//! The batching client.
//!
//! A [`Client`] accumulates typed [`Request`]s, ships them to a
//! [`MetadataServer`] as one checksummed wire batch, and returns the
//! decoded [`Response`]s in request order. Every flush round-trips the
//! real wire encoding in both directions — the simulated network is a
//! byte buffer, but the bytes are the same bytes a TCP transport would
//! carry, so torn or corrupt batches surface exactly as they would in
//! production. Shard scatter/gather and the deterministic merge happen
//! per request inside the flush; wire volume and simulated wire time
//! accumulate in [`ClientStats`].

use crate::codec::{
    decode_request_batch, decode_response_batch, encode_request_batch, encode_response_batch,
    WireResult,
};
use crate::protocol::{Request, Response};
use crate::server::MetadataServer;

/// Client-side accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests flushed.
    pub requests: u64,
    /// Batches (flushes) sent.
    pub batches: u64,
    /// Request bytes put on the wire.
    pub bytes_sent: u64,
    /// Response bytes received.
    pub bytes_received: u64,
    /// Simulated wire time of all batches (request + response legs)
    /// under the server's cost model.
    pub wire_ns: u64,
    /// Retries taken after [`Response::Unavailable`] answers.
    pub retries: u64,
    /// Simulated exponential-backoff time accumulated across retries
    /// (no real sleeping happens — the clock is as simulated as the
    /// wire).
    pub backoff_ns: u64,
}

/// Bounded retry-with-backoff for transient ([`Response::Unavailable`])
/// shard failures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (so `1` disables
    /// retries; `0` is treated as `1`).
    pub max_attempts: u32,
    /// Simulated backoff before retry `n` (1-based) is
    /// `base_backoff_ns << (n - 1)`.
    pub base_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ns: 1_000_000, // 1 ms, doubling
        }
    }
}

/// A batching metadata-service client.
#[derive(Clone, Debug, Default)]
pub struct Client {
    pending: Vec<Request>,
    stats: ClientStats,
}

impl Client {
    /// A client with an empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues a request for the next flush.
    pub fn enqueue(&mut self, req: Request) -> &mut Self {
        self.pending.push(req);
        self
    }

    /// Requests waiting in the current batch.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accounting so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Ships the batch: encode → (wire) → decode → serve each request →
    /// encode replies → (wire) → decode. Responses come back in request
    /// order; the batch is cleared only on success, so a wire error
    /// leaves it intact for retry.
    pub fn flush(&mut self, server: &mut MetadataServer) -> WireResult<Vec<Response>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        // Client → server leg.
        let wire = encode_request_batch(&self.pending);
        let reqs = decode_request_batch(&wire)?;
        // Per-request scatter/gather + deterministic merge.
        let responses: Vec<Response> = reqs.iter().map(|r| server.handle(r)).collect();
        // Server → client leg.
        let reply_wire = encode_response_batch(&responses);
        let out = decode_response_batch(&reply_wire)?;
        let cost = server.cost_model();
        self.stats.requests += self.pending.len() as u64;
        self.stats.batches += 1;
        self.stats.bytes_sent += wire.len() as u64;
        self.stats.bytes_received += reply_wire.len() as u64;
        self.stats.wire_ns += cost.wire_ns(wire.len()) + cost.wire_ns(reply_wire.len());
        self.pending.clear();
        Ok(out)
    }

    /// Convenience: ship one request alone (existing batch contents are
    /// flushed with it, in order; the reply to `req` is returned).
    pub fn call(&mut self, server: &mut MetadataServer, req: Request) -> WireResult<Response> {
        self.enqueue(req);
        let mut out = self.flush(server)?;
        Ok(out.pop().expect("flush returns one response per request"))
    }

    /// [`Self::call`] with bounded retry-with-backoff: a
    /// [`Response::Unavailable`] answer (shard quarantined mid-request,
    /// fleet momentarily degraded) is retried up to
    /// `policy.max_attempts` total attempts with exponentially growing
    /// simulated backoff. Anything else — including hard
    /// [`Response::Error`]s, which a retry cannot fix — returns
    /// immediately. The last response is returned either way.
    pub fn call_with_retry(
        &mut self,
        server: &mut MetadataServer,
        req: Request,
        policy: RetryPolicy,
    ) -> WireResult<Response> {
        let attempts = policy.max_attempts.max(1);
        let mut resp = self.call(server, req.clone())?;
        for n in 1..attempts {
            if !resp.is_retryable() {
                return Ok(resp);
            }
            self.stats.retries += 1;
            self.stats.backoff_ns += policy.base_backoff_ns << (n - 1);
            resp = self.call(server, req.clone())?;
        }
        Ok(resp)
    }
}
