//! The batching client and its transport abstraction.
//!
//! A [`Client`] accumulates typed [`Request`]s, ships them through a
//! [`Transport`] as one checksummed wire batch, and returns the decoded
//! [`Response`]s in request order. The transport is pluggable:
//!
//! * the in-process transport (`impl Transport for MetadataServer`)
//!   round-trips the real wire encoding through a byte buffer — the
//!   bytes are the same bytes a socket would carry, so torn or corrupt
//!   batches surface exactly as they would in production;
//! * `smartstore-net`'s `SocketTransport` carries the identical bytes
//!   over a real TCP or Unix-domain-socket connection.
//!
//! [`Client::call_with_retry`] is the reliability layer on top: it
//! distinguishes *retryable transport* failures (connection reset, send
//! failure — reconnect and back off) from *retryable typed server*
//! answers ([`Response::Unavailable`] backs off exponentially;
//! [`Response::Overloaded`] backs off with jitter so shed request herds
//! do not re-arrive in lockstep) and from *non-retryable* outcomes
//! (typed [`Response::Error`]s and wire decode errors, which a retry
//! cannot fix). Each class has its own [`ClientStats`] counter.

use crate::codec::{decode_response_batch, encode_request_batch, encode_response_batch, WireError};
use crate::protocol::{Request, Response};
use crate::server::MetadataServer;

/// Why a transport could not complete an exchange.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// I/O failure on the wire (connection refused/reset, send or
    /// receive error, timeout). Retryable: reconnect and back off.
    Io {
        /// Human-readable failure description.
        reason: String,
    },
    /// The peer closed the connection mid-exchange. Retryable after a
    /// reconnect.
    Closed,
    /// Torn, corrupt, or structurally invalid bytes — the connection's
    /// framing is poisoned and a retry would resend/re-decode the same
    /// garbage. Not retryable.
    Wire(WireError),
    /// The peer violated the request/response protocol (wrong response
    /// count for a batch, say). Not retryable.
    Protocol(String),
}

impl TransportError {
    /// True when a reconnect + backoff retry may succeed.
    pub fn is_retryable(&self) -> bool {
        matches!(self, TransportError::Io { .. } | TransportError::Closed)
    }
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io { reason } => write!(f, "transport I/O error: {reason}"),
            TransportError::Closed => write!(f, "connection closed by peer"),
            TransportError::Wire(e) => write!(f, "wire error: {e}"),
            TransportError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<WireError> for TransportError {
    fn from(e: WireError) -> Self {
        TransportError::Wire(e)
    }
}

/// Transport result alias.
pub type TransportResult<T> = std::result::Result<T, TransportError>;

/// Something that can carry a request batch to a metadata service and
/// bring the response batch back.
///
/// The unit of exchange is raw wire bytes (the CRC-framed batch
/// encodings of [`crate::codec`]), not typed messages — so every
/// transport carries bit-identical bytes and the client's decode path
/// is the same for an in-process buffer and a socket.
pub trait Transport {
    /// Ships `request_wire` (a framed request batch) and returns the
    /// framed response batch, which must contain exactly `expected`
    /// responses.
    fn exchange(&mut self, request_wire: &[u8], expected: usize) -> TransportResult<Vec<u8>>;

    /// Re-establishes the underlying connection after a retryable
    /// failure. In-process transports have nothing to re-establish.
    fn reconnect(&mut self) -> TransportResult<()> {
        Ok(())
    }

    /// True when the transport crosses a real wire — retry backoff then
    /// actually sleeps instead of only accounting simulated time.
    fn is_remote(&self) -> bool {
        false
    }

    /// Simulated wire time for `bytes` on this transport (0 for real
    /// transports, where the wall clock measures the wire itself).
    fn wire_ns(&self, bytes: usize) -> u64 {
        let _ = bytes;
        0
    }
}

/// The in-process transport: decode the batch, serve each request on
/// this server, encode the replies. Wire errors surface as
/// [`TransportError::Wire`], exactly like a socket peer rejecting the
/// bytes.
impl Transport for MetadataServer {
    fn exchange(&mut self, request_wire: &[u8], expected: usize) -> TransportResult<Vec<u8>> {
        let reqs = crate::codec::decode_request_batch(request_wire)?;
        if reqs.len() != expected {
            return Err(TransportError::Protocol(format!(
                "request batch decoded to {} requests, expected {expected}",
                reqs.len()
            )));
        }
        let responses: Vec<Response> = reqs.iter().map(|r| self.handle(r)).collect();
        Ok(encode_response_batch(&responses))
    }

    fn wire_ns(&self, bytes: usize) -> u64 {
        self.cost_model().wire_ns(bytes)
    }
}

/// Client-side accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Requests flushed.
    pub requests: u64,
    /// Batches (flushes) sent.
    pub batches: u64,
    /// Request bytes put on the wire.
    pub bytes_sent: u64,
    /// Response bytes received.
    pub bytes_received: u64,
    /// Simulated wire time of all batches (request + response legs)
    /// under the transport's cost model (0 on real transports).
    pub wire_ns: u64,
    /// Total retries taken by [`Client::call_with_retry`], every class.
    pub retries: u64,
    /// Retries after retryable *transport* errors (reconnect + backoff).
    pub transport_retries: u64,
    /// Retries after typed [`Response::Overloaded`] sheds (jittered
    /// backoff).
    pub overload_retries: u64,
    /// Reconnect attempts made after transport failures.
    pub reconnects: u64,
    /// Simulated exponential-backoff time accumulated across retries
    /// (on a remote transport this much was actually slept, capped per
    /// step at [`RetryPolicy::max_sleep_ns`]).
    pub backoff_ns: u64,
}

/// Bounded retry-with-backoff for transient failures: retryable
/// transport errors, [`Response::Unavailable`], and
/// [`Response::Overloaded`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, the first one included (so `1` disables
    /// retries; `0` is treated as `1`).
    pub max_attempts: u32,
    /// Backoff before retry `n` (1-based) is
    /// `base_backoff_ns << (n - 1)`, jittered for overload sheds.
    pub base_backoff_ns: u64,
    /// Real-sleep cap per retry step on remote transports (simulated
    /// accounting is uncapped).
    pub max_sleep_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_ns: 1_000_000, // 1 ms, doubling
            max_sleep_ns: 50_000_000,   // never sleep more than 50 ms per step
        }
    }
}

/// A batching metadata-service client.
#[derive(Clone, Debug)]
pub struct Client {
    pending: Vec<Request>,
    stats: ClientStats,
    /// Deterministic jitter state (xorshift64*), so retry schedules are
    /// reproducible under a fixed seed.
    jitter_state: u64,
}

impl Default for Client {
    fn default() -> Self {
        Self::new()
    }
}

impl Client {
    /// A client with an empty batch and the default jitter seed.
    pub fn new() -> Self {
        Self::with_seed(0x9e37_79b9_7f4a_7c15)
    }

    /// A client whose retry jitter derives deterministically from
    /// `seed`.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            pending: Vec::new(),
            stats: ClientStats::default(),
            jitter_state: seed | 1,
        }
    }

    /// Queues a request for the next flush.
    pub fn enqueue(&mut self, req: Request) -> &mut Self {
        self.pending.push(req);
        self
    }

    /// Requests waiting in the current batch.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accounting so far.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// Ships the batch through `transport`: encode → wire → decode.
    /// Responses come back in request order; the batch is cleared only
    /// on success, so a transport error leaves it intact for retry.
    pub fn flush<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
    ) -> TransportResult<Vec<Response>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let wire = encode_request_batch(&self.pending);
        let reply_wire = transport.exchange(&wire, self.pending.len())?;
        let out = decode_response_batch(&reply_wire)?;
        if out.len() != self.pending.len() {
            return Err(TransportError::Protocol(format!(
                "{} responses for {} requests",
                out.len(),
                self.pending.len()
            )));
        }
        self.stats.requests += self.pending.len() as u64;
        self.stats.batches += 1;
        self.stats.bytes_sent += wire.len() as u64;
        self.stats.bytes_received += reply_wire.len() as u64;
        self.stats.wire_ns += transport.wire_ns(wire.len()) + transport.wire_ns(reply_wire.len());
        self.pending.clear();
        Ok(out)
    }

    /// Convenience: ship one request alone (existing batch contents are
    /// flushed with it, in order; the reply to `req` is returned).
    pub fn call<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        req: Request,
    ) -> TransportResult<Response> {
        self.enqueue(req);
        let mut out = self.flush(transport)?;
        out.pop()
            .ok_or_else(|| TransportError::Protocol("flush returned no response".to_string()))
    }

    /// [`Self::call`] with bounded retry-with-backoff, classifying
    /// failures:
    ///
    /// * **retryable transport errors** ([`TransportError::Io`],
    ///   [`TransportError::Closed`]) — reconnect, back off, resend the
    ///   *same* batch (it survives a failed flush);
    /// * **[`Response::Overloaded`]** — the server load-shed; back off
    ///   with deterministic jitter (so a shed herd spreads out) and
    ///   retry;
    /// * **[`Response::Unavailable`]** — transient fleet state; back
    ///   off exponentially and retry;
    /// * **everything else** — typed [`Response::Error`]s, wire decode
    ///   errors, protocol violations — returns immediately: a retry
    ///   cannot fix them.
    ///
    /// On a remote transport the backoff actually sleeps (capped at
    /// [`RetryPolicy::max_sleep_ns`] per step); in-process it is pure
    /// accounting. The last response (or non-retryable error) is
    /// returned either way.
    pub fn call_with_retry<T: Transport + ?Sized>(
        &mut self,
        transport: &mut T,
        req: Request,
        policy: RetryPolicy,
    ) -> TransportResult<Response> {
        let attempts = policy.max_attempts.max(1);
        self.enqueue(req.clone());
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match self.flush(transport) {
                Ok(mut out) => {
                    let Some(resp) = out.pop() else {
                        return Err(TransportError::Protocol(
                            "flush returned no response".to_string(),
                        ));
                    };
                    if attempt >= attempts || !resp.is_retryable() {
                        return Ok(resp);
                    }
                    let jitter = matches!(resp, Response::Overloaded(_));
                    if jitter {
                        self.stats.overload_retries += 1;
                    }
                    self.stats.retries += 1;
                    self.backoff(transport, &policy, attempt, jitter);
                    // The successful flush cleared the batch; requeue
                    // only the request being retried.
                    self.enqueue(req.clone());
                }
                Err(e) if e.is_retryable() && attempt < attempts => {
                    self.stats.retries += 1;
                    self.stats.transport_retries += 1;
                    self.stats.reconnects += 1;
                    // Best effort: a failed reconnect surfaces on the
                    // next exchange as another retryable error.
                    let _ = transport.reconnect();
                    self.backoff(transport, &policy, attempt, false);
                    // The failed flush kept the batch; nothing to
                    // re-enqueue.
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Accounts (and on remote transports, sleeps) one backoff step.
    fn backoff<T: Transport + ?Sized>(
        &mut self,
        transport: &T,
        policy: &RetryPolicy,
        attempt: u32,
        jitter: bool,
    ) {
        let base = policy.base_backoff_ns.saturating_shl(attempt - 1);
        let ns = if jitter {
            // Deterministic xorshift64* jitter in [0.5, 1.5).
            let mut x = self.jitter_state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.jitter_state = x;
            let r = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64;
            ((base as f64) * (0.5 + r)) as u64
        } else {
            base
        };
        self.stats.backoff_ns += ns;
        if transport.is_remote() {
            std::thread::sleep(std::time::Duration::from_nanos(ns.min(policy.max_sleep_ns)));
        }
    }
}

/// `u64::checked_shl` that saturates instead of wrapping for large
/// retry counts.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> Self {
        if shift >= 63 {
            u64::MAX
        } else {
            self.checked_shl(shift).unwrap_or(u64::MAX)
        }
    }
}
