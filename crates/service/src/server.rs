//! The sharded metadata-server facade.
//!
//! The paper's deployment is N metadata servers, each owning the
//! storage units of a few semantic groups (§2.2–2.3). [`MetadataServer`]
//! reproduces that shape in one process: files are partitioned into
//! `n_shards` coarse semantic shards with the *same* LSI sort-tile
//! placement the single system uses for units, and every shard hosts
//! its own [`SmartStoreSystem`] — its own semantic R-tree, version
//! chains, and (optionally) its own store directory with snapshot +
//! write-ahead log, so each server journals only its own groups.
//!
//! Reads scatter to every shard through the `&self`
//! [`smartstore::query::QueryEngine`] and gather through the
//! deterministic merges in [`crate::protocol`]; the merged answer is
//! bit-identical to a single unsharded system's (the parity suite in
//! `tests/parity.rs` asserts this across shard counts, query kinds and
//! route modes). Writes route to exactly one shard: inserts to the
//! shard whose root semantic vector is most correlated (the off-line
//! placement rule of §3.4 lifted to shard granularity), deletes and
//! modifies to the owning shard.

use crate::codec::WireError;
use crate::protocol::{AppliedReply, QueryReply, Request, Response, StatsReply, TopKReply};
use rayon::prelude::*;
use smartstore::grouping::partition_tiled_flat;
use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_linalg::cosine_similarity;
use smartstore_persist::{PersistentStore, SystemPersist as _};
use smartstore_simnet::CostModel;
use smartstore_trace::{FileMetadata, ATTR_DIMS};
use std::collections::HashMap;
use std::path::{Path, PathBuf};

/// Service-layer failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Invalid deployment configuration.
    Config(String),
    /// Durable-store failure on a shard.
    Persist(smartstore_persist::PersistError),
    /// Wire encode/decode failure.
    Wire(WireError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(msg) => write!(f, "service configuration error: {msg}"),
            ServiceError::Persist(e) => write!(f, "shard store error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<smartstore_persist::PersistError> for ServiceError {
    fn from(e: smartstore_persist::PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

/// Service result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// Deployment shape of a [`MetadataServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of shards (simulated metadata servers).
    pub n_shards: usize,
    /// Storage units hosted per shard.
    pub units_per_shard: usize,
    /// Per-shard SmartStore configuration.
    pub cfg: SmartStoreConfig,
    /// Build seed (shard `i` derives its own stream from it).
    pub seed: u64,
    /// When set, every shard persists under
    /// `<store_dir>/shard-<i>/` with its own snapshot + WAL; `None`
    /// runs in memory only.
    pub store_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            units_per_shard: 15,
            cfg: SmartStoreConfig::default(),
            seed: 0x5e7f_face,
            store_dir: None,
        }
    }
}

/// One shard: a full SmartStore system plus its optional durable store.
struct Shard {
    sys: SmartStoreSystem,
    store: Option<PersistentStore>,
    dir: Option<PathBuf>,
}

/// Descriptive snapshot of one shard's layout (for reports and docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard id.
    pub id: usize,
    /// Storage units hosted.
    pub n_units: usize,
    /// Files currently stored.
    pub n_files: usize,
    /// First-level semantic groups on this shard.
    pub n_groups: usize,
    /// On-disk store directory, when durable.
    pub dir: Option<PathBuf>,
}

/// A sharded metadata service facade over N per-group
/// [`SmartStoreSystem`] shards.
pub struct MetadataServer {
    shards: Vec<Shard>,
    /// file id → owning shard.
    owner: HashMap<u64, usize>,
    cost: CostModel,
}

impl MetadataServer {
    /// Builds a sharded deployment: `files` are split into
    /// `cfg.n_shards` semantic shards (same LSI sort-tile placement the
    /// single system uses for units) and each shard builds its own
    /// system of `cfg.units_per_shard` units. With `store_dir` set,
    /// every shard snapshots into its own directory and journals
    /// subsequent changes to its own WAL.
    pub fn build(files: Vec<FileMetadata>, cfg: &ServerConfig) -> Result<Self> {
        if cfg.n_shards == 0 {
            return Err(ServiceError::Config("n_shards must be positive".into()));
        }
        if cfg.units_per_shard == 0 {
            return Err(ServiceError::Config(
                "units_per_shard must be positive".into(),
            ));
        }
        let buckets = Self::partition(files, cfg);
        for (i, b) in buckets.iter().enumerate() {
            if b.len() < cfg.units_per_shard {
                return Err(ServiceError::Config(format!(
                    "shard {i} received {} files for {} units; \
                     use fewer shards or fewer units per shard",
                    b.len(),
                    cfg.units_per_shard
                )));
            }
        }
        let mut shards = Vec::with_capacity(cfg.n_shards);
        let mut owner = HashMap::new();
        for (i, bucket) in buckets.into_iter().enumerate() {
            for f in &bucket {
                owner.insert(f.file_id, i);
            }
            let mut sys = SmartStoreSystem::build(
                bucket,
                cfg.units_per_shard,
                cfg.cfg.clone(),
                cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let (store, dir) = match &cfg.store_dir {
                Some(base) => {
                    let dir = shard_dir(base, i);
                    let (store, _stats) = sys.save_snapshot(&dir)?;
                    (Some(store), Some(dir))
                }
                None => (None, None),
            };
            shards.push(Shard { sys, store, dir });
        }
        if let Some(base) = &cfg.store_dir {
            write_fleet_manifest(base, cfg.n_shards)?;
        }
        Ok(Self {
            shards,
            owner,
            cost: CostModel::default(),
        })
    }

    /// Cold-starts a durable deployment from `base`: the fleet manifest
    /// says how many shards the deployment has, and every `shard-<i>/`
    /// directory is recovered through its own snapshot + WAL replay.
    /// A missing shard directory is an *error*, not a silently smaller
    /// fleet — partial recovery would present data loss as clean empty
    /// query results.
    pub fn open(base: &Path) -> Result<Self> {
        let n_shards = read_fleet_manifest(base)?;
        let mut shards = Vec::with_capacity(n_shards);
        let mut owner = HashMap::new();
        for i in 0..n_shards {
            let dir = shard_dir(base, i);
            let (sys, store, _report) = SmartStoreSystem::open_from_dir(&dir)?;
            for f in sys.current_files() {
                owner.insert(f.file_id, i);
            }
            shards.push(Shard {
                sys,
                store: Some(store),
                dir: Some(dir),
            });
        }
        Ok(Self {
            shards,
            owner,
            cost: CostModel::default(),
        })
    }

    /// Splits files into per-shard buckets along the grouping predicate
    /// — shard placement is the unit-placement rule at coarser
    /// granularity, so semantically correlated files co-locate on one
    /// simulated server.
    fn partition(files: Vec<FileMetadata>, cfg: &ServerConfig) -> Vec<Vec<FileMetadata>> {
        if cfg.n_shards == 1 {
            return vec![files];
        }
        // One flat n×d projection table (no per-record Vec) feeds the
        // LSI sort-tile placement directly.
        let table = smartstore_trace::attr_subset_table(&files, &cfg.cfg.grouping_dims);
        let assignment = partition_tiled_flat(
            &table,
            cfg.cfg.grouping_dims.len(),
            cfg.n_shards,
            cfg.cfg.lsi_rank,
        );
        let mut buckets: Vec<Vec<FileMetadata>> = vec![Vec::new(); cfg.n_shards];
        for (f, &a) in files.into_iter().zip(assignment.iter()) {
            buckets[a].push(f);
        }
        buckets
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's system (tests, reports).
    pub fn shard(&self, i: usize) -> &SmartStoreSystem {
        &self.shards[i].sys
    }

    /// Read access to one shard's durable store, when the deployment
    /// persists (tests, compaction telemetry).
    pub fn shard_store(&self, i: usize) -> Option<&PersistentStore> {
        self.shards[i].store.as_ref()
    }

    /// The cost model used for wire accounting.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The group→server mapping: every first-level semantic group in
    /// the deployment, tagged with the shard that owns it. Shard-major,
    /// group-ascending — the routing table a directory service would
    /// publish.
    pub fn group_map(&self) -> Vec<(usize, NodeId)> {
        self.shards
            .iter()
            .enumerate()
            .flat_map(|(i, s)| {
                s.sys
                    .tree()
                    .first_level_index_units()
                    .into_iter()
                    .map(move |g| (i, g))
            })
            .collect()
    }

    /// Per-shard layout description.
    pub fn layout(&self) -> Vec<ShardInfo> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, s)| ShardInfo {
                id: i,
                n_units: s.sys.units().len(),
                n_files: s.sys.units().iter().map(|u| u.len()).sum(),
                n_groups: s.sys.tree().first_level_index_units().len(),
                dir: s.dir.clone(),
            })
            .collect()
    }

    /// The shards a request must visit. Queries scatter to every shard
    /// (each shard's own index prunes locally); mutations route to
    /// exactly one — inserts to the most semantically correlated shard,
    /// deletes/modifies to the owner. An empty vector means the request
    /// is a no-op (mutation of an unknown file).
    pub fn route(&self, req: &Request) -> Vec<usize> {
        match req {
            Request::Point { .. }
            | Request::Range { .. }
            | Request::TopK { .. }
            | Request::Stats => (0..self.shards.len()).collect(),
            Request::ApplyChange { change } => self.mutation_target(change).into_iter().collect(),
        }
    }

    /// The single mutation-placement rule, shared by [`Self::route`]
    /// (what a directory service would report) and [`Self::apply`]
    /// (what actually happens) so the two can never diverge: inserts go
    /// to the most semantically correlated shard, deletes/modifies to
    /// the owner; `None` for mutations of unknown files.
    fn mutation_target(&self, change: &Change) -> Option<usize> {
        match change {
            Change::Insert(f) => Some(self.most_correlated_shard(&f.attr_vector())),
            Change::Delete(id) => self.owner.get(id).copied(),
            Change::Modify(f) => self.owner.get(&f.file_id).copied(),
        }
    }

    /// The shard whose root semantic vector is most correlated with
    /// `v` (ties break to the lowest shard id).
    fn most_correlated_shard(&self, v: &[f64]) -> usize {
        let mut best = 0;
        let mut best_corr = f64::NEG_INFINITY;
        for (i, s) in self.shards.iter().enumerate() {
            let root = s.sys.tree().root();
            let corr = cosine_similarity(&s.sys.tree().node(root).centroid, v);
            if corr > best_corr {
                best_corr = corr;
                best = i;
            }
        }
        best
    }

    /// Evaluates a *read* request on one shard through the shared
    /// `&self` query engine. Mutations are rejected here — they go
    /// through [`Self::apply`].
    pub fn query_shard(&self, shard: usize, req: &Request) -> Response {
        let Some(s) = self.shards.get(shard) else {
            return Response::Error(format!("unknown shard {shard}"));
        };
        let engine = s.sys.query();
        match req {
            Request::Point { name } => {
                let out = engine.point(name);
                Response::Query(QueryReply {
                    file_ids: out.file_ids,
                    cost: out.cost,
                })
            }
            Request::Range { lo, hi, opts } => {
                // Wire input is untrusted: any f64 bit pattern decodes,
                // but NaN or inverted bounds would panic the evaluator.
                if lo.len() != ATTR_DIMS || hi.len() != ATTR_DIMS {
                    return Response::Error(format!(
                        "range dims {}x{} != {ATTR_DIMS}",
                        lo.len(),
                        hi.len()
                    ));
                }
                if let Some(i) = (0..ATTR_DIMS)
                    .find(|&i| !lo[i].is_finite() || !hi[i].is_finite() || lo[i] > hi[i])
                {
                    return Response::Error(format!(
                        "range bounds invalid in dim {i}: [{}, {}]",
                        lo[i], hi[i]
                    ));
                }
                let out = engine.range(lo, hi, opts);
                Response::Query(QueryReply {
                    file_ids: out.file_ids,
                    cost: out.cost,
                })
            }
            Request::TopK { point, opts } => {
                if point.len() != ATTR_DIMS {
                    return Response::Error(format!("topk dims {} != {ATTR_DIMS}", point.len()));
                }
                if let Some(i) = (0..ATTR_DIMS).find(|&i| !point[i].is_finite()) {
                    return Response::Error(format!(
                        "topk point non-finite in dim {i}: {}",
                        point[i]
                    ));
                }
                let (hits, out) = engine.topk_scored(point, opts);
                Response::TopK(TopKReply {
                    hits,
                    cost: out.cost,
                })
            }
            Request::Stats => Response::Stats(StatsReply {
                per_shard: vec![s.sys.stats()],
            }),
            Request::ApplyChange { .. } => {
                Response::Error("mutations must go through the write path".into())
            }
        }
    }

    /// Applies one mutation: routes it to its shard, journals it to
    /// that shard's WAL *before* the in-memory mutation (when durable),
    /// and updates the file→shard ownership.
    pub fn apply(&mut self, change: Change) -> Response {
        // Untrusted wire input: a non-finite attribute vector would
        // poison every later distance computation on the shard.
        if let Change::Insert(f) | Change::Modify(f) = &change {
            if f.attr_vector().iter().any(|x| !x.is_finite()) {
                return Response::Error(format!(
                    "change for file {} has a non-finite attribute",
                    f.file_id
                ));
            }
        }
        let Some(si) = self.mutation_target(&change) else {
            // No-op: mutation of a file this deployment has never seen.
            return Response::Applied(AppliedReply {
                shard: None,
                group: None,
            });
        };
        let shard = &mut self.shards[si];
        let landed = match shard.store.as_mut() {
            Some(store) => match shard.sys.apply_journaled(store, change.clone()) {
                Ok(g) => g,
                Err(e) => return Response::Error(format!("shard {si} journal error: {e}")),
            },
            None => shard.sys.apply_change(change.clone()),
        };
        match &change {
            Change::Insert(f) => {
                self.owner.insert(f.file_id, si);
            }
            Change::Delete(id) => {
                self.owner.remove(id);
            }
            Change::Modify(_) => {}
        }
        Response::Applied(AppliedReply {
            shard: Some(si),
            group: landed,
        })
    }

    /// Serves one request end to end: route, per-shard evaluation, and
    /// the deterministic merge of [`crate::protocol::merge_responses`].
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::ApplyChange { change } => self.apply(change.clone()),
            _ => self.serve_read(req),
        }
    }

    /// Read-only counterpart of [`Self::handle`] for concurrent
    /// readers; mutations come back as [`Response::Error`].
    ///
    /// The shard fan-out runs on the shared thread pool: every shard
    /// evaluates through its `&self` query engine in parallel, and the
    /// pool's order-preserving `collect` hands the replies to the merge
    /// in shard order — the merged answer is bit-identical to the
    /// sequential dispatch at every thread count (the serving bench
    /// gates on exactly that before timing).
    pub fn serve_read(&self, req: &Request) -> Response {
        if !req.is_read() {
            return Response::Error("serve_read: mutation requires the write path".into());
        }
        let targets = self.route(req);
        let replies: Vec<Response> = targets
            .par_iter()
            .map(|&s| self.query_shard(s, req))
            .collect();
        crate::protocol::merge_responses(req, replies)
    }

    /// Forces every shard's WAL to disk (group commit boundary).
    pub fn sync(&mut self) -> Result<()> {
        for s in &mut self.shards {
            if let Some(store) = s.store.as_mut() {
                store.sync()?;
            }
        }
        Ok(())
    }
}

fn shard_dir(base: &Path, i: usize) -> PathBuf {
    base.join(format!("shard-{i:04}"))
}

/// Name of the fleet manifest at the deployment root: a single decimal
/// shard count, so `open` can tell a complete fleet from a partial one.
const FLEET_MANIFEST: &str = "FLEET";

fn write_fleet_manifest(base: &Path, n_shards: usize) -> Result<()> {
    let path = base.join(FLEET_MANIFEST);
    std::fs::write(&path, format!("{n_shards}\n")).map_err(|e| {
        ServiceError::Config(format!(
            "cannot write fleet manifest {}: {e}",
            path.display()
        ))
    })
}

fn read_fleet_manifest(base: &Path) -> Result<usize> {
    let path = base.join(FLEET_MANIFEST);
    let raw = std::fs::read_to_string(&path).map_err(|e| {
        ServiceError::Config(format!(
            "cannot read fleet manifest {}: {e}",
            path.display()
        ))
    })?;
    let n: usize = raw.trim().parse().map_err(|e| {
        ServiceError::Config(format!(
            "fleet manifest {} is corrupt ({e}): {raw:?}",
            path.display()
        ))
    })?;
    if n == 0 {
        return Err(ServiceError::Config(format!(
            "fleet manifest {} declares zero shards",
            path.display()
        )));
    }
    Ok(n)
}
