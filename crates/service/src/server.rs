//! The sharded metadata-server facade.
//!
//! The paper's deployment is N metadata servers, each owning the
//! storage units of a few semantic groups (§2.2–2.3). [`MetadataServer`]
//! reproduces that shape in one process: files are partitioned into
//! `n_shards` coarse semantic shards with the *same* LSI sort-tile
//! placement the single system uses for units, and every shard hosts
//! its own [`SmartStoreSystem`] — its own semantic R-tree, version
//! chains, and (optionally) its own store directory with snapshot +
//! write-ahead log, so each server journals only its own groups.
//!
//! Reads scatter to every shard through the `&self`
//! [`smartstore::query::QueryEngine`] and gather through the
//! deterministic merges in [`crate::protocol`]; the merged answer is
//! bit-identical to a single unsharded system's (the parity suite in
//! `tests/parity.rs` asserts this across shard counts, query kinds and
//! route modes). Writes route to exactly one shard: inserts to the
//! shard whose root semantic vector is most correlated (the off-line
//! placement rule of §3.4 lifted to shard granularity), deletes and
//! modifies to the owning shard.

use crate::codec::WireError;
use crate::protocol::{
    AppliedReply, DegradedReply, QueryReply, Request, Response, StatsReply, TopKReply,
};
use rayon::prelude::*;
use smartstore::grouping::partition_tiled_flat;
use smartstore::tree::NodeId;
use smartstore::versioning::Change;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_linalg::cosine_similarity;
use smartstore_persist::{PersistentStore, RealVfs, SystemPersist as _, Vfs};
use smartstore_simnet::CostModel;
use smartstore_trace::{FileMetadata, ATTR_DIMS};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Service-layer failure.
#[derive(Debug)]
pub enum ServiceError {
    /// Invalid deployment configuration.
    Config(String),
    /// Durable-store failure on a shard.
    Persist(smartstore_persist::PersistError),
    /// Wire encode/decode failure.
    Wire(WireError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Config(msg) => write!(f, "service configuration error: {msg}"),
            ServiceError::Persist(e) => write!(f, "shard store error: {e}"),
            ServiceError::Wire(e) => write!(f, "wire error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<smartstore_persist::PersistError> for ServiceError {
    fn from(e: smartstore_persist::PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

/// Service result alias.
pub type Result<T> = std::result::Result<T, ServiceError>;

/// Deployment shape of a [`MetadataServer`].
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Number of shards (simulated metadata servers).
    pub n_shards: usize,
    /// Storage units hosted per shard.
    pub units_per_shard: usize,
    /// Per-shard SmartStore configuration.
    pub cfg: SmartStoreConfig,
    /// Build seed (shard `i` derives its own stream from it).
    pub seed: u64,
    /// When set, every shard persists under
    /// `<store_dir>/shard-<i>/` with its own snapshot + WAL; `None`
    /// runs in memory only.
    pub store_dir: Option<PathBuf>,
    /// Filesystem the shard stores run on; `None` means the real disk.
    /// Injecting a [`smartstore_persist::FaultVfs`] here is how the
    /// degraded-mode suite drives shard failures deterministically.
    pub store_vfs: Option<Arc<dyn Vfs>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            n_shards: 4,
            units_per_shard: 15,
            cfg: SmartStoreConfig::default(),
            seed: 0x5e7f_face,
            store_dir: None,
            store_vfs: None,
        }
    }
}

/// Serving state of one shard slot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving reads and writes.
    Healthy,
    /// Fenced off after a persistence failure its store could not heal
    /// (or a failed recovery at cold start): excluded from the read
    /// fan-out, its mutations answered [`Response::Unavailable`]. The
    /// reason records the error that tripped the fence.
    Quarantined(String),
}

impl ShardHealth {
    /// True when the shard serves.
    pub fn is_healthy(&self) -> bool {
        matches!(self, ShardHealth::Healthy)
    }
}

/// One shard: a full SmartStore system plus its optional durable store.
struct Shard {
    sys: SmartStoreSystem,
    store: Option<PersistentStore>,
    dir: Option<PathBuf>,
}

/// A shard slot: a live shard, or the fenced-off remains of one. A
/// failed shard keeps its slot (and id) so the rest of the fleet keeps
/// serving — the paper's deployment loses one metadata server, not the
/// namespace.
enum ShardSlot {
    // Boxed: a full SmartStore system dwarfs the Down variant, and the
    // slot vector should not pay Up's footprint for fenced entries.
    Up(Box<Shard>),
    Down {
        dir: Option<PathBuf>,
        reason: String,
    },
}

impl ShardSlot {
    fn up(&self) -> Option<&Shard> {
        match self {
            ShardSlot::Up(s) => Some(s.as_ref()),
            ShardSlot::Down { .. } => None,
        }
    }

    fn health(&self) -> ShardHealth {
        match self {
            ShardSlot::Up(_) => ShardHealth::Healthy,
            ShardSlot::Down { reason, .. } => ShardHealth::Quarantined(reason.clone()),
        }
    }
}

/// Descriptive snapshot of one shard's layout (for reports and docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardInfo {
    /// Shard id.
    pub id: usize,
    /// Storage units hosted.
    pub n_units: usize,
    /// Files currently stored.
    pub n_files: usize,
    /// First-level semantic groups on this shard.
    pub n_groups: usize,
    /// On-disk store directory, when durable.
    pub dir: Option<PathBuf>,
    /// Serving state (quarantined shards report zero units/files).
    pub health: ShardHealth,
}

/// A sharded metadata service facade over N per-group
/// [`SmartStoreSystem`] shards.
pub struct MetadataServer {
    shards: Vec<ShardSlot>,
    /// file id → owning shard.
    owner: HashMap<u64, usize>,
    cost: CostModel,
    /// Filesystem the shard stores live on (real disk by default).
    vfs: Arc<dyn Vfs>,
}

impl MetadataServer {
    /// Builds a sharded deployment: `files` are split into
    /// `cfg.n_shards` semantic shards (same LSI sort-tile placement the
    /// single system uses for units) and each shard builds its own
    /// system of `cfg.units_per_shard` units. With `store_dir` set,
    /// every shard snapshots into its own directory and journals
    /// subsequent changes to its own WAL.
    pub fn build(files: Vec<FileMetadata>, cfg: &ServerConfig) -> Result<Self> {
        if cfg.n_shards == 0 {
            return Err(ServiceError::Config("n_shards must be positive".into()));
        }
        if cfg.units_per_shard == 0 {
            return Err(ServiceError::Config(
                "units_per_shard must be positive".into(),
            ));
        }
        let buckets = Self::partition(files, cfg);
        for (i, b) in buckets.iter().enumerate() {
            if b.len() < cfg.units_per_shard {
                return Err(ServiceError::Config(format!(
                    "shard {i} received {} files for {} units; \
                     use fewer shards or fewer units per shard",
                    b.len(),
                    cfg.units_per_shard
                )));
            }
        }
        let vfs = cfg.store_vfs.clone().unwrap_or_else(RealVfs::handle);
        let mut shards = Vec::with_capacity(cfg.n_shards);
        let mut owner = HashMap::new();
        for (i, bucket) in buckets.into_iter().enumerate() {
            for f in &bucket {
                owner.insert(f.file_id, i);
            }
            let mut sys = SmartStoreSystem::build(
                bucket,
                cfg.units_per_shard,
                cfg.cfg.clone(),
                cfg.seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            let (store, dir) = match &cfg.store_dir {
                Some(base) => {
                    let dir = shard_dir(base, i);
                    let (store, _stats) = sys.save_snapshot_with(vfs.clone(), &dir)?;
                    (Some(store), Some(dir))
                }
                None => (None, None),
            };
            shards.push(ShardSlot::Up(Box::new(Shard { sys, store, dir })));
        }
        if let Some(base) = &cfg.store_dir {
            write_fleet_manifest(vfs.as_ref(), base, cfg.n_shards)?;
        }
        Ok(Self {
            shards,
            owner,
            cost: CostModel::default(),
            vfs,
        })
    }

    /// Cold-starts a durable deployment from `base`: the fleet manifest
    /// says how many shards the deployment has, and every `shard-<i>/`
    /// directory is recovered through its own snapshot + WAL replay.
    ///
    /// A *missing* shard directory is an error, not a silently smaller
    /// fleet — partial recovery would present data loss as clean empty
    /// query results. A directory that is present but fails recovery,
    /// however, comes up [`ShardHealth::Quarantined`] instead of
    /// failing the fleet: reads carry a [`Response::Degraded`] marker
    /// naming the missing shard, and [`Self::try_reopen_shard`] can
    /// bring it back once repaired. Only if *every* shard fails does
    /// the open itself fail.
    pub fn open(base: &Path) -> Result<Self> {
        Self::open_with(RealVfs::handle(), base)
    }

    /// [`Self::open`] over an explicit [`Vfs`].
    pub fn open_with(vfs: Arc<dyn Vfs>, base: &Path) -> Result<Self> {
        let n_shards = read_fleet_manifest(vfs.as_ref(), base)?;
        let mut shards = Vec::with_capacity(n_shards);
        let mut owner = HashMap::new();
        let mut first_err = None;
        for i in 0..n_shards {
            let dir = shard_dir(base, i);
            if !vfs.exists(&dir).unwrap_or(false) {
                return Err(ServiceError::Config(format!(
                    "shard directory {} is missing; refusing a partial fleet",
                    dir.display()
                )));
            }
            match SmartStoreSystem::open_from_dir_with(vfs.clone(), &dir) {
                Ok((sys, store, _report)) => {
                    for f in sys.current_files() {
                        owner.insert(f.file_id, i);
                    }
                    shards.push(ShardSlot::Up(Box::new(Shard {
                        sys,
                        store: Some(store),
                        dir: Some(dir),
                    })));
                }
                Err(e) => {
                    let reason = format!("recovery failed: {e}");
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    shards.push(ShardSlot::Down {
                        dir: Some(dir),
                        reason,
                    });
                }
            }
        }
        if shards.iter().all(|s| s.up().is_none()) {
            // No shard recovered: there is nothing to serve degraded
            // answers *from*, so surface the failure.
            return Err(first_err
                .map(ServiceError::Persist)
                .unwrap_or_else(|| ServiceError::Config("fleet has no shards".into())));
        }
        Ok(Self {
            shards,
            owner,
            cost: CostModel::default(),
            vfs,
        })
    }

    /// Splits files into per-shard buckets along the grouping predicate
    /// — shard placement is the unit-placement rule at coarser
    /// granularity, so semantically correlated files co-locate on one
    /// simulated server.
    fn partition(files: Vec<FileMetadata>, cfg: &ServerConfig) -> Vec<Vec<FileMetadata>> {
        if cfg.n_shards == 1 {
            return vec![files];
        }
        // One flat n×d projection table (no per-record Vec) feeds the
        // LSI sort-tile placement directly.
        let table = smartstore_trace::attr_subset_table(&files, &cfg.cfg.grouping_dims);
        let assignment = partition_tiled_flat(
            &table,
            cfg.cfg.grouping_dims.len(),
            cfg.n_shards,
            cfg.cfg.lsi_rank,
        );
        let mut buckets: Vec<Vec<FileMetadata>> = vec![Vec::new(); cfg.n_shards];
        for (f, &a) in files.into_iter().zip(assignment.iter()) {
            buckets[a].push(f);
        }
        buckets
    }

    /// Number of shard slots (healthy or quarantined).
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Read access to one shard's system (tests, reports). Panics on a
    /// quarantined shard — check [`Self::shard_health`] first.
    pub fn shard(&self, i: usize) -> &SmartStoreSystem {
        match &self.shards[i] {
            ShardSlot::Up(s) => &s.sys,
            ShardSlot::Down { reason, .. } => {
                // lint:allow(P003) -- documented panicking test accessor; check shard_health() first
                panic!("shard {i} is quarantined ({reason})")
            }
        }
    }

    /// Read access to one shard's durable store, when the deployment
    /// persists (tests, compaction telemetry); `None` when in-memory
    /// or quarantined.
    pub fn shard_store(&self, i: usize) -> Option<&PersistentStore> {
        self.shards[i].up().and_then(|s| s.store.as_ref())
    }

    /// Serving state of shard `i`.
    pub fn shard_health(&self, i: usize) -> ShardHealth {
        self.shards[i].health()
    }

    /// Shard ids currently serving, ascending.
    pub fn healthy_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].up().is_some())
            .collect()
    }

    /// Shard ids currently fenced off, ascending.
    pub fn quarantined_shards(&self) -> Vec<usize> {
        (0..self.shards.len())
            .filter(|&i| self.shards[i].up().is_none())
            .collect()
    }

    /// Fences shard `i` off by hand — the operator's kill switch (the
    /// server itself quarantines a shard when its store fails beyond
    /// [`PersistentStore::compact`]'s ability to heal). The shard's
    /// store is dropped (closing its WAL); a durable shard can come
    /// back through [`Self::try_reopen_shard`].
    pub fn quarantine_shard(&mut self, i: usize, reason: impl Into<String>) {
        if let ShardSlot::Up(s) = &self.shards[i] {
            // Ownership entries stay: a delete/modify of a fenced
            // shard's file must answer `Unavailable`, not pass for a
            // no-op on an unknown file.
            let dir = s.dir.clone();
            self.shards[i] = ShardSlot::Down {
                dir,
                reason: reason.into(),
            };
        }
    }

    /// Attempts to bring a quarantined durable shard back by running
    /// full crash recovery on its directory. On success the shard
    /// serves again (and re-registers its file ownership); on failure
    /// it stays quarantined and the error is returned.
    pub fn try_reopen_shard(&mut self, i: usize) -> Result<()> {
        let ShardSlot::Down { dir, reason } = &self.shards[i] else {
            return Ok(()); // already serving
        };
        let Some(dir) = dir.clone() else {
            return Err(ServiceError::Config(format!(
                "shard {i} has no store directory to recover from ({reason})"
            )));
        };
        let (sys, store, _report) = SmartStoreSystem::open_from_dir_with(self.vfs.clone(), &dir)?;
        for f in sys.current_files() {
            self.owner.insert(f.file_id, i);
        }
        self.shards[i] = ShardSlot::Up(Box::new(Shard {
            sys,
            store: Some(store),
            dir: Some(dir),
        }));
        Ok(())
    }

    /// The cost model used for wire accounting.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The group→server mapping: every first-level semantic group in
    /// the deployment, tagged with the shard that owns it. Shard-major,
    /// group-ascending — the routing table a directory service would
    /// publish.
    pub fn group_map(&self) -> Vec<(usize, NodeId)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.up().map(|s| (i, s)))
            .flat_map(|(i, s)| {
                s.sys
                    .tree()
                    .first_level_index_units()
                    .into_iter()
                    .map(move |g| (i, g))
            })
            .collect()
    }

    /// Per-shard layout description (quarantined shards report zero
    /// units/files and carry their fence reason in `health`).
    pub fn layout(&self) -> Vec<ShardInfo> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, slot)| match slot {
                ShardSlot::Up(s) => ShardInfo {
                    id: i,
                    n_units: s.sys.units().len(),
                    n_files: s.sys.units().iter().map(|u| u.len()).sum(),
                    n_groups: s.sys.tree().first_level_index_units().len(),
                    dir: s.dir.clone(),
                    health: ShardHealth::Healthy,
                },
                ShardSlot::Down { dir, reason } => ShardInfo {
                    id: i,
                    n_units: 0,
                    n_files: 0,
                    n_groups: 0,
                    dir: dir.clone(),
                    health: ShardHealth::Quarantined(reason.clone()),
                },
            })
            .collect()
    }

    /// The shards a request must visit. Queries scatter to every shard
    /// (each shard's own index prunes locally); mutations route to
    /// exactly one — inserts to the most semantically correlated shard,
    /// deletes/modifies to the owner. An empty vector means the request
    /// is a no-op (mutation of an unknown file).
    pub fn route(&self, req: &Request) -> Vec<usize> {
        match req {
            Request::Point { .. }
            | Request::Range { .. }
            | Request::TopK { .. }
            | Request::Stats => (0..self.shards.len()).collect(),
            Request::ApplyChange { change } => self.mutation_target(change).into_iter().collect(),
        }
    }

    /// The single mutation-placement rule, shared by [`Self::route`]
    /// (what a directory service would report) and [`Self::apply`]
    /// (what actually happens) so the two can never diverge: inserts go
    /// to the most semantically correlated shard, deletes/modifies to
    /// the owner; `None` for mutations of unknown files.
    fn mutation_target(&self, change: &Change) -> Option<usize> {
        match change {
            Change::Insert(f) => self.most_correlated_shard(&f.attr_vector()),
            Change::Delete(id) => self.owner.get(id).copied(),
            Change::Modify(f) => self.owner.get(&f.file_id).copied(),
        }
    }

    /// The *healthy* shard whose root semantic vector is most
    /// correlated with `v` (ties break to the lowest shard id) — a
    /// quarantined shard takes no new files, so inserts reroute to the
    /// best healthy alternative. `None` when every shard is down.
    fn most_correlated_shard(&self, v: &[f64]) -> Option<usize> {
        let mut best = None;
        let mut best_corr = f64::NEG_INFINITY;
        for (i, slot) in self.shards.iter().enumerate() {
            let Some(s) = slot.up() else { continue };
            let root = s.sys.tree().root();
            let corr = cosine_similarity(&s.sys.tree().node(root).centroid, v);
            if corr > best_corr {
                best_corr = corr;
                best = Some(i);
            }
        }
        best
    }

    /// Evaluates a *read* request on one shard through the shared
    /// `&self` query engine. Mutations are rejected here — they go
    /// through [`Self::apply`].
    pub fn query_shard(&self, shard: usize, req: &Request) -> Response {
        let Some(slot) = self.shards.get(shard) else {
            return Response::Error(format!("unknown shard {shard}"));
        };
        let Some(s) = slot.up() else {
            return Response::Unavailable(format!("shard {shard} is quarantined"));
        };
        let engine = s.sys.query();
        match req {
            Request::Point { name } => {
                let out = engine.point(name);
                Response::Query(QueryReply {
                    file_ids: out.file_ids,
                    cost: out.cost,
                })
            }
            Request::Range { lo, hi, opts } => {
                // Wire input is untrusted: any f64 bit pattern decodes,
                // but NaN or inverted bounds would panic the evaluator.
                if lo.len() != ATTR_DIMS || hi.len() != ATTR_DIMS {
                    return Response::Error(format!(
                        "range dims {}x{} != {ATTR_DIMS}",
                        lo.len(),
                        hi.len()
                    ));
                }
                if let Some(i) = (0..ATTR_DIMS)
                    .find(|&i| !lo[i].is_finite() || !hi[i].is_finite() || lo[i] > hi[i])
                {
                    return Response::Error(format!(
                        "range bounds invalid in dim {i}: [{}, {}]",
                        lo[i], hi[i]
                    ));
                }
                let out = engine.range(lo, hi, opts);
                Response::Query(QueryReply {
                    file_ids: out.file_ids,
                    cost: out.cost,
                })
            }
            Request::TopK { point, opts } => {
                if point.len() != ATTR_DIMS {
                    return Response::Error(format!("topk dims {} != {ATTR_DIMS}", point.len()));
                }
                if let Some(i) = (0..ATTR_DIMS).find(|&i| !point[i].is_finite()) {
                    return Response::Error(format!(
                        "topk point non-finite in dim {i}: {}",
                        point[i]
                    ));
                }
                let (hits, out) = engine.topk_scored(point, opts);
                Response::TopK(TopKReply {
                    hits,
                    cost: out.cost,
                })
            }
            Request::Stats => Response::Stats(StatsReply {
                per_shard: vec![s.sys.stats()],
            }),
            Request::ApplyChange { .. } => {
                Response::Error("mutations must go through the write path".into())
            }
        }
    }

    /// Applies one mutation: routes it to its shard, journals it to
    /// that shard's WAL *before* the in-memory mutation (when durable),
    /// and updates the file→shard ownership.
    ///
    /// A persistence failure does not fail the fleet: a poisoned store
    /// is healed in place with a full [`PersistentStore::compact`] and
    /// the append retried once; only if the heal itself fails is the
    /// shard quarantined and the mutation answered
    /// [`Response::Unavailable`] — at which point a client retry
    /// reroutes an insert to a healthy shard.
    pub fn apply(&mut self, change: Change) -> Response {
        // Untrusted wire input: a non-finite attribute vector would
        // poison every later distance computation on the shard.
        if let Change::Insert(f) | Change::Modify(f) = &change {
            if f.attr_vector().iter().any(|x| !x.is_finite()) {
                return Response::Error(format!(
                    "change for file {} has a non-finite attribute",
                    f.file_id
                ));
            }
        }
        let Some(si) = self.mutation_target(&change) else {
            if self.shards.iter().any(|s| s.up().is_none()) {
                // With part of the fleet fenced off, "never seen" is
                // unprovable: the file may live on a quarantined shard
                // whose ownership was never registered.
                return Response::Unavailable(
                    "file ownership indeterminate while shards are quarantined".into(),
                );
            }
            // No-op: mutation of a file this deployment has never seen.
            return Response::Applied(AppliedReply {
                shard: None,
                group: None,
            });
        };
        let shard = match &mut self.shards[si] {
            ShardSlot::Up(s) => s,
            ShardSlot::Down { reason, .. } => {
                return Response::Unavailable(format!("shard {si} is quarantined ({reason})"));
            }
        };
        let landed = match shard.store.as_mut() {
            Some(store) => {
                match Self::apply_durable(&mut shard.sys, store, &change) {
                    Ok(g) => g,
                    Err(e) => {
                        // The shard's store is beyond in-place healing:
                        // fence it off rather than failing the fleet.
                        self.quarantine_shard(si, format!("journal error: {e}"));
                        return Response::Unavailable(format!(
                            "shard {si} quarantined after journal error: {e}"
                        ));
                    }
                }
            }
            None => shard.sys.apply_change(change.clone()),
        };
        match &change {
            Change::Insert(f) => {
                self.owner.insert(f.file_id, si);
            }
            Change::Delete(id) => {
                self.owner.remove(id);
            }
            Change::Modify(_) => {}
        }
        Response::Applied(AppliedReply {
            shard: Some(si),
            group: landed,
        })
    }

    /// The durable write path with in-place healing. The change is
    /// acknowledged iff it was journaled *and* applied; compaction runs
    /// best-effort after the ack point, and a store it poisons is
    /// healed by the full-rewrite compaction (which re-snapshots the
    /// complete in-memory state and clears the poison). An error means
    /// the change did not land and the store could not be healed.
    fn apply_durable(
        sys: &mut SmartStoreSystem,
        store: &mut PersistentStore,
        change: &Change,
    ) -> smartstore_persist::Result<Option<NodeId>> {
        let journal = |sys: &mut SmartStoreSystem, store: &mut PersistentStore| {
            sys.try_apply_change_journaled(change.clone(), |group, ch| {
                store.append(group, ch).map(|_| ())
            })
        };
        let landed = match journal(sys, store) {
            Ok(g) => g,
            Err(_) => {
                // The append failed and poisoned the journal (the log
                // may have a gap); nothing was applied. Heal with a
                // full compaction — a fresh snapshot of the complete
                // in-memory state needs no WAL at all — then retry the
                // append exactly once.
                store.compact(sys)?;
                journal(sys, store)?
            }
        };
        if store.should_compact() {
            // Strictly best-effort: the change is already durable in
            // the WAL, so a compaction failure must NOT become an
            // error — the caller would answer `Unavailable` and a
            // retry would apply the change twice. A poisoned store is
            // healed opportunistically; if even that fails, the *next*
            // append finds the poison and takes the heal-or-quarantine
            // path with nothing acknowledged.
            if store.compact_incremental(sys).is_err() && store.is_poisoned() {
                let _ = store.compact(sys);
            }
        }
        Ok(landed)
    }

    /// Serves one request end to end: route, per-shard evaluation, and
    /// the deterministic merge of [`crate::protocol::merge_responses`].
    pub fn handle(&mut self, req: &Request) -> Response {
        match req {
            Request::ApplyChange { change } => self.apply(change.clone()),
            _ => self.serve_read(req),
        }
    }

    /// Read-only counterpart of [`Self::handle`] for concurrent
    /// readers; mutations come back as [`Response::Error`].
    ///
    /// The shard fan-out runs on the shared thread pool: every shard
    /// evaluates through its `&self` query engine in parallel, and the
    /// pool's order-preserving `collect` hands the replies to the merge
    /// in shard order — the merged answer is bit-identical to the
    /// sequential dispatch at every thread count (the serving bench
    /// gates on exactly that before timing).
    ///
    /// With part of the fleet quarantined, the fan-out covers only the
    /// healthy shards and the merged answer is wrapped in
    /// [`Response::Degraded`] naming the missing shards — bit-identical
    /// answers to a deployment built from only those shards, never a
    /// silent partial result. With *no* healthy shard the request is
    /// [`Response::Unavailable`].
    pub fn serve_read(&self, req: &Request) -> Response {
        if !req.is_read() {
            return Response::Error("serve_read: mutation requires the write path".into());
        }
        let healthy = self.healthy_shards();
        if healthy.is_empty() {
            return Response::Unavailable("every shard is quarantined".into());
        }
        let replies: Vec<Response> = healthy
            .par_iter()
            .map(|&s| self.query_shard(s, req))
            .collect();
        let merged = crate::protocol::merge_responses(req, replies);
        let missing_shards = self.quarantined_shards();
        if missing_shards.is_empty() {
            return merged;
        }
        match merged {
            // Failures stay failures; only real answers carry the
            // partial-result marker.
            err @ (Response::Error(_) | Response::Unavailable(_) | Response::Overloaded(_)) => err,
            partial => Response::Degraded(DegradedReply {
                partial: Box::new(partial),
                missing_shards,
            }),
        }
    }

    /// Forces every healthy shard's WAL to disk (group commit
    /// boundary).
    pub fn sync(&mut self) -> Result<()> {
        for slot in &mut self.shards {
            if let ShardSlot::Up(s) = slot {
                if let Some(store) = s.store.as_mut() {
                    store.sync()?;
                }
            }
        }
        Ok(())
    }
}

fn shard_dir(base: &Path, i: usize) -> PathBuf {
    base.join(format!("shard-{i:04}"))
}

/// Name of the fleet manifest at the deployment root: a single decimal
/// shard count, so `open` can tell a complete fleet from a partial one.
const FLEET_MANIFEST: &str = "FLEET";

fn write_fleet_manifest(vfs: &dyn Vfs, base: &Path, n_shards: usize) -> Result<()> {
    let path = base.join(FLEET_MANIFEST);
    let write = || -> std::io::Result<()> {
        vfs.create_dir_all(base)?;
        let mut f = vfs.create(&path)?;
        f.write_all_at(0, format!("{n_shards}\n").as_bytes())?;
        f.sync()
    };
    write().map_err(|e| {
        ServiceError::Config(format!(
            "cannot write fleet manifest {}: {e}",
            path.display()
        ))
    })
}

fn read_fleet_manifest(vfs: &dyn Vfs, base: &Path) -> Result<usize> {
    let path = base.join(FLEET_MANIFEST);
    let raw = vfs
        .read(&path)
        .map_err(|e| {
            ServiceError::Config(format!(
                "cannot read fleet manifest {}: {e}",
                path.display()
            ))
        })
        .map(|bytes| String::from_utf8_lossy(&bytes).into_owned())?;
    let n: usize = raw.trim().parse().map_err(|e| {
        ServiceError::Config(format!(
            "fleet manifest {} is corrupt ({e}): {raw:?}",
            path.display()
        ))
    })?;
    if n == 0 {
        return Err(ServiceError::Config(format!(
            "fleet manifest {} declares zero shards",
            path.display()
        )));
    }
    Ok(n)
}
