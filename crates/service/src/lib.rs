//! `smartstore-service`: the serving layer of the SmartStore
//! reproduction.
//!
//! The paper's system is a *distributed metadata service*: clients send
//! point, range and top-k queries to metadata servers that each own the
//! storage units of a few semantic groups (§2.2), while a change stream
//! mutates metadata under versioned consistency (§4.4). This crate
//! lifts the in-process [`smartstore::SmartStoreSystem`] into that
//! shape:
//!
//! * [`protocol`] — typed [`Request`]/[`Response`] enums covering
//!   point/range/top-k queries (with [`QueryOptions`] instead of loose
//!   `RouteMode` + `k` arguments), metadata mutations, and statistics,
//!   plus the deterministic shard-response merges;
//! * [`codec`] — wire encoding on the `smartstore-persist` primitive
//!   codec with the same CRC-32 record framing as the WAL, so requests
//!   and responses can cross a (simulated) network or be logged;
//! * [`server`] — [`MetadataServer`], a facade over N per-group shards,
//!   each a full `SmartStoreSystem` with (optionally) its own store
//!   directory and write-ahead log; reads scatter through the `&self`
//!   [`smartstore::query::QueryEngine`] and writes route to exactly one
//!   shard;
//! * [`client`] — [`Client`], which batches requests into checksummed
//!   wire batches and returns merged responses in request order.
//!
//! The load-bearing property is *parity*: a sharded deployment answers
//! every query bit-identically to a single unsharded system over the
//! same files — union-sort-dedup for id sets, `(distance, id)`-ordered
//! merge for scored top-k — which `tests/parity.rs` asserts across
//! shard counts, both route modes, and a live change stream.

pub mod client;
pub mod codec;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientStats, RetryPolicy, Transport, TransportError, TransportResult};
pub use codec::{WireError, WireResult};
pub use protocol::{
    merge_query_replies, merge_responses, merge_topk_replies, AppliedReply, DegradedReply,
    QueryReply, Request, Response, StatsReply, TopKReply,
};
pub use server::{MetadataServer, Result, ServerConfig, ServiceError, ShardHealth, ShardInfo};

// The options type is part of the request surface; re-export it so
// protocol users need only this crate.
pub use smartstore::query::QueryOptions;
