//! Wire encoding of [`Request`]/[`Response`] on the `smartstore-persist`
//! codec.
//!
//! Messages reuse the persistence layer's primitive encoder/decoder and
//! its checksummed record framing (`[len][crc32][payload]`), so a
//! request or response can cross a simulated network, be appended to a
//! log, or be replayed — with the same torn/corrupt detection the WAL
//! has. A *batch* is simply a sequence of framed records in one buffer;
//! [`decode_request_batch`] stops at the first clean EOF and surfaces a
//! torn record as a [`WireError`].

use crate::protocol::{
    AppliedReply, DegradedReply, QueryReply, Request, Response, StatsReply, TopKReply,
};
use smartstore::query::QueryOptions;
use smartstore::routing::{QueryCost, RouteMode};
use smartstore::system::SystemStats;
use smartstore_persist::codec::{
    get_change, get_record, put_change, put_record, Dec, DecResult, DecodeError, Enc, FrameError,
};

/// Why a wire buffer could not be decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Structural decode failure inside a record payload.
    Decode {
        /// Byte offset within the payload.
        offset: usize,
        /// Reason.
        reason: String,
    },
    /// Torn or corrupt record framing.
    Frame {
        /// Offset of the bad record's first byte.
        offset: usize,
        /// Reason.
        reason: String,
    },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Decode { offset, reason } => {
                write!(f, "wire decode error at payload offset {offset}: {reason}")
            }
            WireError::Frame { offset, reason } => {
                write!(f, "wire frame error at offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode {
            offset: e.offset,
            reason: e.reason,
        }
    }
}

impl From<FrameError> for WireError {
    fn from(e: FrameError) -> Self {
        match e {
            FrameError::Eof => WireError::Frame {
                offset: 0,
                reason: "unexpected end of buffer".into(),
            },
            FrameError::Torn { offset, reason } => WireError::Frame { offset, reason },
        }
    }
}

/// Wire decode result.
pub type WireResult<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Leaf encoders
// ---------------------------------------------------------------------

const MODE_ONLINE: u8 = 0;
const MODE_OFFLINE: u8 = 1;

fn put_mode(e: &mut Enc, m: RouteMode) {
    e.u8(match m {
        RouteMode::Online => MODE_ONLINE,
        RouteMode::Offline => MODE_OFFLINE,
    });
}

fn get_mode(d: &mut Dec) -> DecResult<RouteMode> {
    let at = d.pos();
    match d.u8()? {
        MODE_ONLINE => Ok(RouteMode::Online),
        MODE_OFFLINE => Ok(RouteMode::Offline),
        t => Err(DecodeError::new_at(at, format!("unknown route mode {t}"))),
    }
}

fn put_opts(e: &mut Enc, o: &QueryOptions) {
    put_mode(e, o.mode);
    e.usize(o.k);
}

fn get_opts(d: &mut Dec) -> DecResult<QueryOptions> {
    Ok(QueryOptions {
        mode: get_mode(d)?,
        k: d.usize()?,
    })
}

fn put_cost(e: &mut Enc, c: &QueryCost) {
    e.u64(c.latency_ns);
    e.u64(c.messages);
    e.usize(c.units_probed);
    e.usize(c.group_hops);
}

fn get_cost(d: &mut Dec) -> DecResult<QueryCost> {
    Ok(QueryCost {
        latency_ns: d.u64()?,
        messages: d.u64()?,
        units_probed: d.usize()?,
        group_hops: d.usize()?,
    })
}

fn put_system_stats(e: &mut Enc, s: &SystemStats) {
    e.usize(s.n_units);
    e.usize(s.n_groups);
    e.usize(s.tree_height);
    e.usize(s.tree_index_bytes);
    e.usize(s.per_unit_index_bytes);
    e.usize(s.version_bytes);
}

fn get_system_stats(d: &mut Dec) -> DecResult<SystemStats> {
    Ok(SystemStats {
        n_units: d.usize()?,
        n_groups: d.usize()?,
        tree_height: d.usize()?,
        tree_index_bytes: d.usize()?,
        per_unit_index_bytes: d.usize()?,
        version_bytes: d.usize()?,
    })
}

fn put_ids(e: &mut Enc, ids: &[u64]) {
    e.u32(ids.len() as u32);
    for &id in ids {
        e.u64(id);
    }
}

fn get_ids(d: &mut Dec) -> DecResult<Vec<u64>> {
    let n = d.u32()? as usize;
    (0..n).map(|_| d.u64()).collect()
}

fn put_opt_usize(e: &mut Enc, v: Option<usize>) {
    match v {
        Some(x) => {
            e.bool(true);
            e.usize(x);
        }
        None => e.bool(false),
    }
}

fn get_opt_usize(d: &mut Dec) -> DecResult<Option<usize>> {
    Ok(if d.bool()? { Some(d.usize()?) } else { None })
}

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

const REQ_POINT: u8 = 0;
const REQ_RANGE: u8 = 1;
const REQ_TOPK: u8 = 2;
const REQ_APPLY: u8 = 3;
const REQ_STATS: u8 = 4;

/// Encodes one request payload (unframed).
pub fn put_request(e: &mut Enc, r: &Request) {
    match r {
        Request::Point { name } => {
            e.u8(REQ_POINT);
            e.str(name);
        }
        Request::Range { lo, hi, opts } => {
            e.u8(REQ_RANGE);
            e.f64s(lo);
            e.f64s(hi);
            put_opts(e, opts);
        }
        Request::TopK { point, opts } => {
            e.u8(REQ_TOPK);
            e.f64s(point);
            put_opts(e, opts);
        }
        Request::ApplyChange { change } => {
            e.u8(REQ_APPLY);
            put_change(e, change);
        }
        Request::Stats => e.u8(REQ_STATS),
    }
}

/// Decodes one request payload (unframed).
pub fn get_request(d: &mut Dec) -> DecResult<Request> {
    let at = d.pos();
    match d.u8()? {
        REQ_POINT => Ok(Request::Point { name: d.str()? }),
        REQ_RANGE => Ok(Request::Range {
            lo: d.f64s()?,
            hi: d.f64s()?,
            opts: get_opts(d)?,
        }),
        REQ_TOPK => Ok(Request::TopK {
            point: d.f64s()?,
            opts: get_opts(d)?,
        }),
        REQ_APPLY => Ok(Request::ApplyChange {
            change: get_change(d)?,
        }),
        REQ_STATS => Ok(Request::Stats),
        t => Err(DecodeError::new_at(at, format!("unknown request tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

const RESP_QUERY: u8 = 0;
const RESP_TOPK: u8 = 1;
const RESP_APPLIED: u8 = 2;
const RESP_STATS: u8 = 3;
const RESP_ERROR: u8 = 4;
const RESP_DEGRADED: u8 = 5;
const RESP_UNAVAILABLE: u8 = 6;
const RESP_OVERLOADED: u8 = 7;

/// Encodes one response payload (unframed).
pub fn put_response(e: &mut Enc, r: &Response) {
    match r {
        Response::Degraded(d) => {
            e.u8(RESP_DEGRADED);
            e.u32(d.missing_shards.len() as u32);
            for &s in &d.missing_shards {
                e.usize(s);
            }
            put_response(e, &d.partial);
        }
        Response::Unavailable(msg) => {
            e.u8(RESP_UNAVAILABLE);
            e.str(msg);
        }
        Response::Overloaded(msg) => {
            e.u8(RESP_OVERLOADED);
            e.str(msg);
        }
        Response::Query(q) => {
            e.u8(RESP_QUERY);
            put_ids(e, &q.file_ids);
            put_cost(e, &q.cost);
        }
        Response::TopK(t) => {
            e.u8(RESP_TOPK);
            e.u32(t.hits.len() as u32);
            for &(id, dist) in &t.hits {
                e.u64(id);
                e.f64(dist);
            }
            put_cost(e, &t.cost);
        }
        Response::Applied(a) => {
            e.u8(RESP_APPLIED);
            put_opt_usize(e, a.shard);
            put_opt_usize(e, a.group);
        }
        Response::Stats(s) => {
            e.u8(RESP_STATS);
            e.u32(s.per_shard.len() as u32);
            for st in &s.per_shard {
                put_system_stats(e, st);
            }
        }
        Response::Error(msg) => {
            e.u8(RESP_ERROR);
            e.str(msg);
        }
    }
}

/// Decodes one response payload (unframed).
pub fn get_response(d: &mut Dec) -> DecResult<Response> {
    get_response_at_depth(d, 0)
}

/// The server never nests degraded markers, so the decoder rejects a
/// degraded payload inside another — without the bound, a crafted
/// buffer of repeated tags would recurse once per byte and overflow
/// the stack before any structural check fails.
fn get_response_at_depth(d: &mut Dec, depth: usize) -> DecResult<Response> {
    let at = d.pos();
    match d.u8()? {
        RESP_DEGRADED => {
            if depth > 0 {
                return Err(DecodeError::new_at(
                    at,
                    "nested degraded response".to_string(),
                ));
            }
            let n = d.u32()? as usize;
            let mut missing_shards = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                missing_shards.push(d.usize()?);
            }
            let partial = Box::new(get_response_at_depth(d, depth + 1)?);
            Ok(Response::Degraded(DegradedReply {
                partial,
                missing_shards,
            }))
        }
        RESP_UNAVAILABLE => Ok(Response::Unavailable(d.str()?)),
        RESP_OVERLOADED => Ok(Response::Overloaded(d.str()?)),
        RESP_QUERY => Ok(Response::Query(QueryReply {
            file_ids: get_ids(d)?,
            cost: get_cost(d)?,
        })),
        RESP_TOPK => {
            let n = d.u32()? as usize;
            let mut hits = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                let id = d.u64()?;
                let dist = d.f64()?;
                hits.push((id, dist));
            }
            Ok(Response::TopK(TopKReply {
                hits,
                cost: get_cost(d)?,
            }))
        }
        RESP_APPLIED => Ok(Response::Applied(AppliedReply {
            shard: get_opt_usize(d)?,
            group: get_opt_usize(d)?,
        })),
        RESP_STATS => {
            let n = d.u32()? as usize;
            let mut per_shard = Vec::with_capacity(n.min(1 << 20));
            for _ in 0..n {
                per_shard.push(get_system_stats(d)?);
            }
            Ok(Response::Stats(StatsReply { per_shard }))
        }
        RESP_ERROR => Ok(Response::Error(d.str()?)),
        t => Err(DecodeError::new_at(at, format!("unknown response tag {t}"))),
    }
}

// ---------------------------------------------------------------------
// Framed messages and batches
// ---------------------------------------------------------------------

fn frame(payload_of: impl FnOnce(&mut Enc)) -> Vec<u8> {
    let mut e = Enc::new();
    payload_of(&mut e);
    let payload = e.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 8);
    put_record(&mut out, &payload);
    out
}

fn unframe_one<T>(buf: &[u8], get: impl FnOnce(&mut Dec) -> DecResult<T>) -> WireResult<T> {
    let (payload, next) = get_record(buf, 0)?;
    if next != buf.len() {
        return Err(WireError::Frame {
            offset: next,
            reason: format!("{} trailing bytes after message", buf.len() - next),
        });
    }
    let mut d = Dec::new(payload);
    let v = get(&mut d)?;
    d.finish()?;
    Ok(v)
}

/// Encodes one request as a checksummed framed message.
pub fn encode_request(r: &Request) -> Vec<u8> {
    frame(|e| put_request(e, r))
}

/// Decodes one framed request message.
pub fn decode_request(buf: &[u8]) -> WireResult<Request> {
    unframe_one(buf, get_request)
}

/// Encodes one response as a checksummed framed message.
pub fn encode_response(r: &Response) -> Vec<u8> {
    frame(|e| put_response(e, r))
}

/// Decodes one framed response message.
pub fn decode_response(buf: &[u8]) -> WireResult<Response> {
    unframe_one(buf, get_response)
}

/// Encodes a batch of requests as consecutive framed records — the
/// client→server wire format.
pub fn encode_request_batch(reqs: &[Request]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in reqs {
        let mut e = Enc::new();
        put_request(&mut e, r);
        put_record(&mut out, &e.into_bytes());
    }
    out
}

/// Decodes a request batch; a torn record is an error, a clean EOF ends
/// the batch.
pub fn decode_request_batch(buf: &[u8]) -> WireResult<Vec<Request>> {
    decode_batch(buf, get_request)
}

/// Encodes a batch of responses — the server→client wire format.
pub fn encode_response_batch(resps: &[Response]) -> Vec<u8> {
    let mut out = Vec::new();
    for r in resps {
        let mut e = Enc::new();
        put_response(&mut e, r);
        put_record(&mut out, &e.into_bytes());
    }
    out
}

/// Decodes a response batch.
pub fn decode_response_batch(buf: &[u8]) -> WireResult<Vec<Response>> {
    decode_batch(buf, get_response)
}

fn decode_batch<T>(buf: &[u8], get: impl Fn(&mut Dec) -> DecResult<T>) -> WireResult<Vec<T>> {
    let mut out = Vec::new();
    let mut pos = 0;
    loop {
        match get_record(buf, pos) {
            Ok((payload, next)) => {
                let mut d = Dec::new(payload);
                out.push(get(&mut d)?);
                d.finish()?;
                pos = next;
            }
            Err(FrameError::Eof) => return Ok(out),
            Err(e @ FrameError::Torn { .. }) => return Err(e.into()),
        }
    }
}
