//! The typed query/mutation protocol.
//!
//! A [`Request`] is everything a client can ask a metadata service:
//! the paper's three query kinds (point §3.3.3, range §3.3.1, top-k
//! §3.3.2), a metadata mutation (§4.4's change stream), and a
//! structure-statistics probe (Fig. 7). A [`Response`] is the typed
//! answer. Both are plain data — `Clone`/`Debug`/`PartialEq` — and
//! wire-encodable through [`crate::codec`], so they can cross a
//! (simulated) network, be logged, or be replayed.
//!
//! Responses from several shards merge deterministically
//! ([`merge_responses`]): id sets union-sort-dedup exactly like a
//! single [`smartstore::SmartStoreSystem`] sorts its own answers, and
//! top-k hits carry their squared distances so the cross-shard merge
//! reproduces the single system's `(distance, id)` order bit for bit.

use smartstore::query::QueryOptions;
use smartstore::routing::QueryCost;
use smartstore::system::SystemStats;
use smartstore::tree::NodeId;
use smartstore::versioning::Change;

/// One request to the metadata service.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Filename lookup through the Bloom-filter hierarchy. Routing is
    /// Bloom-guided and mode-independent, so it takes no options.
    Point {
        /// Queried filename.
        name: String,
    },
    /// Multi-dimensional range query over the attribute space.
    Range {
        /// Inclusive lower corner (`ATTR_DIMS` wide).
        lo: Vec<f64>,
        /// Inclusive upper corner (`ATTR_DIMS` wide).
        hi: Vec<f64>,
        /// Routing options.
        opts: QueryOptions,
    },
    /// Top-`opts.k` nearest-neighbour query.
    TopK {
        /// Query point (`ATTR_DIMS` wide).
        point: Vec<f64>,
        /// Routing options (`opts.k` is the result-set size).
        opts: QueryOptions,
    },
    /// One metadata mutation (insert / delete / modify).
    ApplyChange {
        /// The change to apply.
        change: Change,
    },
    /// Structure statistics of every shard.
    Stats,
}

impl Request {
    /// True for requests that never mutate server state.
    pub fn is_read(&self) -> bool {
        !matches!(self, Request::ApplyChange { .. })
    }

    /// Short label for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Point { .. } => "point",
            Request::Range { .. } => "range",
            Request::TopK { .. } => "topk",
            Request::ApplyChange { .. } => "apply",
            Request::Stats => "stats",
        }
    }
}

/// Answer to a point or range query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryReply {
    /// Matching file ids, ascending and deduplicated.
    pub file_ids: Vec<u64>,
    /// Simulated cost (max-latency / summed messages across shards
    /// once merged).
    pub cost: QueryCost,
}

/// Answer to a top-k query: scored hits so a distributed merge can
/// reproduce the single-system order exactly.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopKReply {
    /// `(file_id, squared distance)` pairs in ascending
    /// `(distance, id)` order.
    pub hits: Vec<(u64, f64)>,
    /// Simulated cost.
    pub cost: QueryCost,
}

impl TopKReply {
    /// The hit ids in rank order.
    pub fn file_ids(&self) -> Vec<u64> {
        self.hits.iter().map(|&(id, _)| id).collect()
    }
}

/// Acknowledgement of an applied change.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AppliedReply {
    /// The shard that absorbed the change; `None` for a no-op
    /// (delete/modify of an unknown file).
    pub shard: Option<usize>,
    /// The first-level semantic group it landed in on that shard.
    pub group: Option<NodeId>,
}

/// Structure statistics, one entry per shard.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsReply {
    /// Per-shard statistics, shard id order.
    pub per_shard: Vec<SystemStats>,
}

impl StatsReply {
    /// Units summed over shards.
    pub fn total_units(&self) -> usize {
        self.per_shard.iter().map(|s| s.n_units).sum()
    }

    /// First-level semantic groups summed over shards.
    pub fn total_groups(&self) -> usize {
        self.per_shard.iter().map(|s| s.n_groups).sum()
    }
}

/// A partial answer served while part of the fleet is quarantined.
///
/// The inner response is the deterministic merge over the shards that
/// *did* answer — bit-identical to what a deployment built from only
/// those shards would return — and `missing_shards` names the
/// quarantined shards whose files are absent, so a caller can tell a
/// complete answer from a degraded one instead of mistaking data loss
/// for a clean empty result.
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedReply {
    /// The merged answer over the healthy shards.
    pub partial: Box<Response>,
    /// Quarantined shard ids excluded from the answer, ascending.
    pub missing_shards: Vec<usize>,
}

/// One response from the metadata service.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Point/range answer.
    Query(QueryReply),
    /// Top-k answer.
    TopK(TopKReply),
    /// Mutation acknowledgement.
    Applied(AppliedReply),
    /// Statistics.
    Stats(StatsReply),
    /// A partial answer: some shards are quarantined, the rest served.
    Degraded(DegradedReply),
    /// Transient failure (shard quarantined mid-request, no healthy
    /// shard available, …) — the request may succeed on retry, which
    /// [`crate::client::Client::call_with_retry`] automates.
    Unavailable(String),
    /// Load-shed by admission control: the server's bounded in-flight
    /// budget (global or per-connection) was exhausted, so the request
    /// was answered immediately instead of queueing unboundedly. The
    /// request itself is fine — retry after backing off (the client
    /// adds jitter so shed herds do not re-arrive in lockstep).
    Overloaded(String),
    /// The request could not be served (dimension mismatch, unknown
    /// shard, decode failure surfaced server-side, …). Not retryable.
    Error(String),
}

impl Response {
    /// The answer ids of a query-shaped response, in rank/ascending
    /// order; `None` for non-query responses. A degraded response
    /// yields the ids of its partial answer.
    pub fn file_ids(&self) -> Option<Vec<u64>> {
        match self {
            Response::Query(q) => Some(q.file_ids.clone()),
            Response::TopK(t) => Some(t.file_ids()),
            Response::Degraded(d) => d.partial.file_ids(),
            _ => None,
        }
    }

    /// The simulated cost of a query-shaped response.
    pub fn cost(&self) -> Option<QueryCost> {
        match self {
            Response::Query(q) => Some(q.cost),
            Response::TopK(t) => Some(t.cost),
            Response::Degraded(d) => d.partial.cost(),
            _ => None,
        }
    }

    /// True for responses a client may retry.
    pub fn is_retryable(&self) -> bool {
        matches!(self, Response::Unavailable(_) | Response::Overloaded(_))
    }
}

/// Folds per-shard costs: shards evaluate in parallel, so latency is
/// the slowest shard's; messages and probe counts add.
fn merge_costs(costs: impl IntoIterator<Item = QueryCost>) -> QueryCost {
    let mut out = QueryCost::default();
    for c in costs {
        out.latency_ns = out.latency_ns.max(c.latency_ns);
        out.messages += c.messages;
        out.units_probed += c.units_probed;
        out.group_hops += c.group_hops;
    }
    out
}

/// Merges per-shard point/range replies: union of id sets, ascending
/// and deduplicated — exactly how a single system normalizes its own
/// answer, so the merged reply is bit-identical to the unsharded one.
pub fn merge_query_replies(replies: &[QueryReply]) -> QueryReply {
    let mut file_ids: Vec<u64> = replies.iter().flat_map(|r| r.file_ids.clone()).collect();
    file_ids.sort_unstable();
    file_ids.dedup();
    QueryReply {
        file_ids,
        cost: merge_costs(replies.iter().map(|r| r.cost)),
    }
}

/// Merges per-shard scored top-k replies: global `(distance, id)`
/// order, truncated to `k` — the same comparator the single system
/// uses, so ranking and tie-breaks are identical. `total_cmp` keeps
/// that order for the non-negative distances real shards produce while
/// removing the panic path a NaN from a malformed reply would hit with
/// `partial_cmp(..).unwrap()`; reply *validation* (NaN ⇒ error, not a
/// silently ranked hit) happens in [`merge_responses`].
pub fn merge_topk_replies(replies: &[TopKReply], k: usize) -> TopKReply {
    let mut hits: Vec<(u64, f64)> = replies.iter().flat_map(|r| r.hits.clone()).collect();
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    hits.truncate(k);
    TopKReply {
        hits,
        cost: merge_costs(replies.iter().map(|r| r.cost)),
    }
}

/// Merges the per-shard responses to one request into the client-facing
/// answer. Deterministic: no iteration-order or timing dependence.
///
/// Mismatched reply kinds (a shard answering a range request with a
/// top-k reply, say) produce [`Response::Error`]; the first shard error
/// wins otherwise.
pub fn merge_responses(req: &Request, replies: Vec<Response>) -> Response {
    // A transient shard failure makes the whole answer transient (the
    // retry may land after the shard heals or is quarantined out of
    // the fan-out); a hard shard error stays hard. Admission-control
    // sheds are equally transient and keep their type so the client
    // backs off with jitter instead of plain exponential.
    if let Some(msg) = replies.iter().find_map(|r| match r {
        Response::Overloaded(m) => Some(m.clone()),
        _ => None,
    }) {
        return Response::Overloaded(msg);
    }
    if let Some(msg) = replies.iter().find_map(|r| match r {
        Response::Unavailable(m) => Some(m.clone()),
        _ => None,
    }) {
        return Response::Unavailable(msg);
    }
    if let Some(err) = replies.iter().find_map(|r| match r {
        Response::Error(e) => Some(e.clone()),
        _ => None,
    }) {
        return Response::Error(err);
    }
    match req {
        Request::Point { .. } | Request::Range { .. } => {
            let mut qs = Vec::with_capacity(replies.len());
            for r in replies {
                match r {
                    Response::Query(q) => qs.push(q),
                    other => return mismatched(req, &other),
                }
            }
            Response::Query(merge_query_replies(&qs))
        }
        Request::TopK { opts, .. } => {
            let mut ts = Vec::with_capacity(replies.len());
            for r in replies {
                match r {
                    Response::TopK(t) => {
                        // Wire replies are untrusted: a poisoned
                        // (non-finite) distance must degrade to an
                        // error, never rank among real hits.
                        if let Some(&(id, d)) = t.hits.iter().find(|&&(_, d)| !d.is_finite()) {
                            return Response::Error(format!(
                                "shard top-k hit for file {id} has non-finite distance {d}"
                            ));
                        }
                        ts.push(t);
                    }
                    other => return mismatched(req, &other),
                }
            }
            Response::TopK(merge_topk_replies(&ts, opts.k))
        }
        Request::Stats => {
            let mut per_shard = Vec::with_capacity(replies.len());
            for r in replies {
                match r {
                    Response::Stats(s) => per_shard.extend(s.per_shard),
                    other => return mismatched(req, &other),
                }
            }
            Response::Stats(StatsReply { per_shard })
        }
        Request::ApplyChange { .. } => match replies.into_iter().next() {
            Some(r @ Response::Applied(_)) => r,
            Some(other) => mismatched(req, &other),
            None => Response::Applied(AppliedReply::default()),
        },
    }
}

fn mismatched(req: &Request, got: &Response) -> Response {
    Response::Error(format!(
        "shard reply kind mismatch for {} request: {got:?}",
        req.kind()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(ids: &[u64], latency: u64, messages: u64) -> QueryReply {
        QueryReply {
            file_ids: ids.to_vec(),
            cost: QueryCost {
                latency_ns: latency,
                messages,
                units_probed: 1,
                group_hops: 0,
            },
        }
    }

    #[test]
    fn query_merge_unions_and_sorts() {
        let merged = merge_query_replies(&[q(&[5, 9], 100, 3), q(&[1, 5], 250, 4)]);
        assert_eq!(merged.file_ids, vec![1, 5, 9]);
        assert_eq!(merged.cost.latency_ns, 250, "parallel shards: max");
        assert_eq!(merged.cost.messages, 7, "messages add");
    }

    #[test]
    fn topk_merge_orders_by_distance_then_id() {
        let a = TopKReply {
            hits: vec![(10, 1.0), (11, 3.0)],
            cost: QueryCost::default(),
        };
        let b = TopKReply {
            hits: vec![(7, 1.0), (12, 2.0)],
            cost: QueryCost::default(),
        };
        let merged = merge_topk_replies(&[a, b], 3);
        assert_eq!(merged.hits, vec![(7, 1.0), (10, 1.0), (12, 2.0)]);
    }

    #[test]
    fn response_merge_propagates_shard_errors() {
        let req = Request::Point { name: "x".into() };
        let merged = merge_responses(
            &req,
            vec![
                Response::Query(q(&[1], 1, 1)),
                Response::Error("shard 1 down".into()),
            ],
        );
        assert_eq!(merged, Response::Error("shard 1 down".into()));
    }

    #[test]
    fn response_merge_rejects_kind_mismatch() {
        let req = Request::Point { name: "x".into() };
        let merged = merge_responses(&req, vec![Response::Stats(StatsReply::default())]);
        assert!(matches!(merged, Response::Error(_)));
    }

    #[test]
    fn poisoned_topk_hit_degrades_to_error_not_panic() {
        // Regression: the merge used `partial_cmp(..).unwrap()`, so a
        // NaN distance from any shard panicked the client-side merge
        // even though the wire boundary validates *request* floats.
        let req = Request::TopK {
            point: vec![0.0; 12],
            opts: QueryOptions::offline().with_k(2),
        };
        let good = TopKReply {
            hits: vec![(1, 0.5), (2, 1.5)],
            cost: QueryCost::default(),
        };
        let poisoned = TopKReply {
            hits: vec![(9, f64::NAN)],
            cost: QueryCost::default(),
        };
        let merged = merge_responses(&req, vec![Response::TopK(good), Response::TopK(poisoned)]);
        match merged {
            Response::Error(e) => assert!(e.contains("file 9"), "unexpected error text: {e}"),
            other => panic!("poisoned hit must merge to an error, got {other:?}"),
        }
        // Infinite distances are equally un-rankable.
        let inf = TopKReply {
            hits: vec![(3, f64::INFINITY)],
            cost: QueryCost::default(),
        };
        let req2 = Request::TopK {
            point: vec![0.0; 12],
            opts: QueryOptions::offline().with_k(1),
        };
        assert!(matches!(
            merge_responses(&req2, vec![Response::TopK(inf)]),
            Response::Error(_)
        ));
    }

    #[test]
    fn topk_direct_merge_is_nan_safe() {
        // Even when called directly (bypassing merge_responses'
        // validation), the comparator must not panic.
        let r = TopKReply {
            hits: vec![(1, f64::NAN), (2, 0.25)],
            cost: QueryCost::default(),
        };
        let merged = merge_topk_replies(&[r], 2);
        assert_eq!(merged.hits[0], (2, 0.25), "finite hits rank first");
    }
}
