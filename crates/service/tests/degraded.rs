//! Degraded-mode serving: a quarantined shard is *isolated*, never
//! fatal. The parity gate here is the degraded analogue of
//! `tests/parity.rs`: with shard `q` fenced off, every read answer's
//! payload must be bit-identical to a deployment built from only the
//! healthy shards' files — the missing data is flagged through the
//! typed [`Response::Degraded`] marker, never silently absent and
//! never an invented answer.

#![allow(clippy::disallowed_methods)]

use smartstore::versioning::Change;
use smartstore::QueryOptions;
use smartstore_persist::{FaultKind, FaultPlan, FaultVfs};
use smartstore_service::{
    Client, MetadataServer, Request, Response, RetryPolicy, ServerConfig, ShardHealth,
};
use smartstore_trace::query_gen::QueryGenConfig;
use smartstore_trace::{
    FileMetadata, GeneratorConfig, MetadataPopulation, QueryDistribution, QueryWorkload,
};
use std::path::Path;

fn population(n: usize, seed: u64) -> MetadataPopulation {
    MetadataPopulation::generate(GeneratorConfig {
        n_files: n,
        n_clusters: 24,
        seed,
        ..GeneratorConfig::default()
    })
}

fn durable_server(
    pop: &MetadataPopulation,
    n_shards: usize,
    seed: u64,
    vfs: &FaultVfs,
    base: &Path,
) -> MetadataServer {
    MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards,
            units_per_shard: 24 / n_shards,
            seed,
            store_dir: Some(base.to_path_buf()),
            store_vfs: Some(vfs.handle()),
            ..ServerConfig::default()
        },
    )
    .expect("durable server builds")
}

fn memory_server(files: Vec<FileMetadata>, n_shards: usize, seed: u64) -> MetadataServer {
    MetadataServer::build(
        files,
        &ServerConfig {
            n_shards,
            units_per_shard: 24 / n_shards,
            seed,
            ..ServerConfig::default()
        },
    )
    .expect("memory server builds")
}

fn workload(pop: &MetadataPopulation, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        pop,
        &QueryGenConfig {
            n_range: 15,
            n_topk: 15,
            n_point: 15,
            k: 8,
            distribution: QueryDistribution::Zipf,
            seed,
            ..Default::default()
        },
    )
}

fn read_requests(w: &QueryWorkload) -> Vec<Request> {
    let opts = QueryOptions::offline();
    let mut reqs = Vec::new();
    for q in &w.ranges {
        reqs.push(Request::Range {
            lo: q.lo.clone(),
            hi: q.hi.clone(),
            opts,
        });
    }
    for q in &w.topks {
        reqs.push(Request::TopK {
            point: q.point.clone(),
            opts: opts.with_k(q.k),
        });
    }
    for q in &w.points {
        reqs.push(Request::Point {
            name: q.name.clone(),
        });
    }
    reqs
}

/// Strips the degraded wrapper, asserting it names exactly `missing`.
fn unwrap_degraded(resp: Response, missing: &[usize]) -> Response {
    match resp {
        Response::Degraded(d) => {
            assert_eq!(d.missing_shards, missing, "degraded marker shard set");
            *d.partial
        }
        other => panic!("expected a degraded response, got {other:?}"),
    }
}

/// The answer payload two responses must share for parity: ids for
/// point/range, `(id, distance)` pairs for top-k. Costs legitimately
/// differ between deployments (different unit structure), answers may
/// not.
fn answer_of(resp: &Response) -> Vec<(u64, f64)> {
    match resp {
        Response::Query(q) => q.file_ids.iter().map(|&id| (id, 0.0)).collect(),
        Response::TopK(t) => t.hits.clone(),
        other => panic!("not an answer-shaped response: {other:?}"),
    }
}

/// The headline gate: with one shard quarantined, every degraded read
/// answer is bit-identical to a deployment built from only the healthy
/// shards' files — and after `try_reopen_shard`, answers are full
/// again.
#[test]
fn degraded_answers_match_healthy_subfleet() {
    let base = Path::new("/fleet");
    let vfs = FaultVfs::new();
    let pop = population(2400, 91);
    let mut srv = durable_server(&pop, 3, 91, &vfs, base);

    // Live churn so shard WALs are non-trivial.
    let mut client = Client::new();
    for (i, f) in pop.files.iter().take(60).enumerate() {
        let mut m = f.clone();
        m.size = m.size.wrapping_mul(3).max(1);
        m.mtime += i as f64;
        client
            .call(
                &mut srv,
                Request::ApplyChange {
                    change: Change::Modify(m),
                },
            )
            .expect("wire ok");
    }

    let w = workload(&pop, 17);
    let reqs = read_requests(&w);
    let full_answers: Vec<Response> = reqs.iter().map(|r| srv.serve_read(r)).collect();

    // The healthy-subfleet reference: shards 0 and 2's files, built as
    // an independent two-shard deployment (partitioned afresh — parity
    // must not depend on how files are split across shards).
    let healthy_files: Vec<FileMetadata> = [0usize, 2]
        .iter()
        .flat_map(|&i| srv.shard(i).current_files())
        .collect();
    let subfleet = memory_server(healthy_files, 2, 91);

    srv.quarantine_shard(1, "operator fence for the parity gate");
    assert!(matches!(srv.shard_health(1), ShardHealth::Quarantined(_)));
    assert_eq!(srv.healthy_shards(), vec![0, 2]);

    for (req, full) in reqs.iter().zip(&full_answers) {
        let degraded = unwrap_degraded(srv.serve_read(req), &[1]);
        let expect = subfleet.serve_read(req);
        assert_eq!(
            answer_of(&degraded),
            answer_of(&expect),
            "degraded answer diverged from the healthy subfleet for {req:?}"
        );
        // Sanity for id-set answers: the degraded answer is a subset of
        // the full one. (Top-k is exempt — with shard 1's close hits
        // gone, files that missed the full fleet's top-k legitimately
        // move up into the degraded ranking.)
        if let Response::Query(_) = &degraded {
            let full_ids = full.file_ids().expect("full answer");
            for id in degraded.file_ids().expect("degraded answer") {
                assert!(full_ids.contains(&id), "degraded invented file {id}");
            }
        }
    }

    // Stats degrade too: two shards' worth, flagged.
    match unwrap_degraded(srv.serve_read(&Request::Stats), &[1]) {
        Response::Stats(s) => assert_eq!(s.per_shard.len(), 2),
        other => panic!("unexpected {other:?}"),
    }

    // Recovery: the shard's store directory is intact, so reopening
    // restores the exact full answers.
    srv.try_reopen_shard(1).expect("shard 1 reopens");
    assert!(srv.shard_health(1).is_healthy());
    for (req, full) in reqs.iter().zip(&full_answers) {
        assert_eq!(&srv.serve_read(req), full, "post-reopen answer for {req:?}");
    }
}

/// Mutations against a fenced shard are `Unavailable` (retryable), not
/// silent no-ops; unknown-file mutations become indeterminate while
/// any shard is down; inserts reroute to healthy shards immediately.
#[test]
fn quarantined_mutations_are_unavailable_not_noops() {
    let base = Path::new("/fleet");
    let vfs = FaultVfs::new();
    let pop = population(2000, 92);
    let mut srv = durable_server(&pop, 2, 92, &vfs, base);
    let mut client = Client::new();

    // A file owned by shard 1.
    let victim = srv.shard(1).current_files()[0].clone();
    srv.quarantine_shard(1, "fenced");

    match client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Delete(victim.file_id),
            },
        )
        .expect("wire ok")
    {
        Response::Unavailable(_) => {}
        other => panic!("delete on fenced shard must be unavailable, got {other:?}"),
    }

    // Unknown file: normally a clean no-op ack; during degradation the
    // no-op claim is unprovable.
    match client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Delete(u64::MAX),
            },
        )
        .expect("wire ok")
    {
        Response::Unavailable(_) => {}
        other => panic!("unknown-file delete must be indeterminate, got {other:?}"),
    }

    // Inserts reroute to the healthy shard without needing a retry.
    let mut f = pop.files[0].clone();
    f.file_id = 77_000_001;
    f.name = "rerouted".into();
    match client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Insert(f),
            },
        )
        .expect("wire ok")
    {
        Response::Applied(a) => assert_eq!(a.shard, Some(0), "insert reroutes to shard 0"),
        other => panic!("unexpected {other:?}"),
    }
}

/// A dead disk under one shard quarantines that shard — after the
/// store fails to self-heal — and the rest of the fleet keeps serving;
/// the client's bounded retry turns the transient failure into a
/// success once the fault clears the routing.
#[test]
fn store_failure_quarantines_shard_and_retry_recovers() {
    let base = Path::new("/fleet");
    let vfs = FaultVfs::new();
    let pop = population(2000, 93);
    let mut srv = durable_server(&pop, 2, 93, &vfs, base);
    let mut client = Client::new();

    // Pick an insert that routes to a durable shard, then kill the
    // disk under the whole fleet (sticky: every write fails).
    let mut f = pop.files[0].clone();
    f.file_id = 88_000_001;
    f.name = "under_fault".into();
    vfs.set_plan(Some(FaultPlan {
        at: vfs.ops(),
        kind: FaultKind::IoError,
        sticky: true,
    }));

    // First attempt: the target shard's append fails, the in-place
    // heal (full compaction) fails on the same dead disk, and the
    // shard is quarantined — answered as a retryable failure.
    let resp = client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Insert(f.clone()),
            },
        )
        .expect("wire ok");
    assert!(
        resp.is_retryable(),
        "dead-disk apply must be retryable: {resp:?}"
    );
    assert_eq!(srv.quarantined_shards().len(), 1, "one shard fenced");

    // The disk comes back; the bounded retry reroutes the insert to
    // the surviving shard and succeeds.
    vfs.set_plan(None);
    let resp = client
        .call_with_retry(
            &mut srv,
            Request::ApplyChange {
                change: Change::Insert(f),
            },
            RetryPolicy::default(),
        )
        .expect("wire ok");
    match resp {
        Response::Applied(a) => assert!(a.shard.is_some(), "insert landed"),
        other => panic!("retried insert must land, got {other:?}"),
    }

    // Reads kept working throughout, flagged degraded.
    let name = srv.shard(srv.healthy_shards()[0]).current_files()[0]
        .name
        .clone();
    match srv.serve_read(&Request::Point { name }) {
        Response::Degraded(_) => {}
        other => panic!("reads must degrade, not fail: {other:?}"),
    }

    // And the fenced shard recovers from its intact store directory.
    let q = srv.quarantined_shards()[0];
    srv.try_reopen_shard(q).expect("quarantined shard reopens");
    assert!(srv.quarantined_shards().is_empty());
}

/// Cold start with one shard's store corrupted on disk: the fleet
/// comes up with that shard quarantined (reads degraded) instead of
/// refusing to serve anything — while a *missing* shard directory
/// still fails the open loudly (`tests/parity.rs` pins that).
#[test]
fn cold_start_quarantines_unrecoverable_shard() {
    let base = Path::new("/fleet");
    let vfs = FaultVfs::new();
    let pop = population(2000, 94);
    {
        let mut srv = durable_server(&pop, 2, 94, &vfs, base);
        srv.sync().expect("sync");
    }

    // Destroy shard 1's manifest bytes on the (virtual) disk.
    let dir1 = base.join("shard-0001");
    let manifest = dir1.join("MANIFEST");
    assert!(
        vfs.corrupt_durable(&manifest, 2, 0xFF),
        "manifest corrupted"
    );

    let mut srv = MetadataServer::open_with(vfs.handle(), base).expect("degraded cold start");
    assert_eq!(srv.n_shards(), 2);
    assert!(srv.shard_health(0).is_healthy());
    match srv.shard_health(1) {
        ShardHealth::Quarantined(reason) => {
            assert!(reason.contains("recovery failed"), "reason: {reason}")
        }
        ShardHealth::Healthy => panic!("corrupt shard must come up quarantined"),
    }

    // Reads serve the surviving shard, flagged.
    let name = srv.shard(0).current_files()[0].name.clone();
    match srv.serve_read(&Request::Point { name }) {
        Response::Degraded(d) => assert_eq!(d.missing_shards, vec![1]),
        other => panic!("expected degraded read, got {other:?}"),
    }

    // The corruption is durable, so reopening keeps failing — typed,
    // and the shard stays fenced.
    assert!(srv.try_reopen_shard(1).is_err());
    assert!(!srv.shard_health(1).is_healthy());
}

/// With every shard quarantined the service answers `Unavailable`
/// (retryable), and the client's bounded retry gives up after
/// `max_attempts` with the backoff accounted.
#[test]
fn full_outage_is_unavailable_and_retry_is_bounded() {
    let pop = population(2000, 95);
    let mut srv = memory_server(pop.files.clone(), 2, 95);
    srv.quarantine_shard(0, "fenced");
    srv.quarantine_shard(1, "fenced");

    let mut client = Client::new();
    let policy = RetryPolicy {
        max_attempts: 4,
        base_backoff_ns: 1_000,
        ..RetryPolicy::default()
    };
    let resp = client
        .call_with_retry(
            &mut srv,
            Request::Point {
                name: pop.files[0].name.clone(),
            },
            policy,
        )
        .expect("wire ok");
    assert!(matches!(resp, Response::Unavailable(_)));
    let stats = client.stats();
    assert_eq!(stats.retries, 3, "max_attempts - 1 retries");
    assert_eq!(
        stats.backoff_ns,
        1_000 + 2_000 + 4_000,
        "exponential backoff accounted"
    );
}
