//! Wire-protocol properties: every `Request`/`Response` variant must
//! round-trip the codec exactly, batches must preserve order, and torn
//! or bit-flipped buffers must be *detected*, never misdecoded.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use proptest::prelude::*;
use smartstore::query::QueryOptions;
use smartstore::routing::{QueryCost, RouteMode};
use smartstore::system::SystemStats;
use smartstore::versioning::Change;
use smartstore_service::codec::{
    decode_request, decode_request_batch, decode_response, decode_response_batch, encode_request,
    encode_request_batch, encode_response, encode_response_batch,
};
use smartstore_service::{
    AppliedReply, DegradedReply, QueryReply, Request, Response, StatsReply, TopKReply,
};
use smartstore_trace::FileMetadata;

fn file(id: u64, name: &str, size: u64) -> FileMetadata {
    FileMetadata {
        file_id: id,
        name: name.to_string(),
        dir: format!("/svc/{}", id % 7),
        owner: (id % 13) as u32,
        size,
        ctime: id as f64 * 0.5,
        mtime: id as f64 * 1.5 - 3.0,
        atime: id as f64,
        read_bytes: id.wrapping_mul(31),
        write_bytes: id.wrapping_mul(17),
        access_count: (id % 97) as u32,
        proc_id: (id % 5) as u32,
        truth_cluster: if id.is_multiple_of(2) {
            Some((id % 11) as u32)
        } else {
            None
        },
    }
}

fn opts(mode_bit: bool, k: usize) -> QueryOptions {
    QueryOptions {
        mode: if mode_bit {
            RouteMode::Online
        } else {
            RouteMode::Offline
        },
        k,
    }
}

fn cost(seed: u64) -> QueryCost {
    QueryCost {
        latency_ns: seed.wrapping_mul(3),
        messages: seed % 1000,
        units_probed: (seed % 64) as usize,
        group_hops: (seed % 8) as usize,
    }
}

/// One representative of every request variant, parameterized.
fn requests(seed: u64, name: String, dims: Vec<f64>) -> Vec<Request> {
    vec![
        Request::Point { name: name.clone() },
        Request::Range {
            lo: dims.iter().map(|x| x - 1.0).collect(),
            hi: dims.clone(),
            opts: opts(seed.is_multiple_of(2), (seed % 32) as usize),
        },
        Request::TopK {
            point: dims,
            opts: opts(seed.is_multiple_of(3), (seed % 17) as usize + 1),
        },
        Request::ApplyChange {
            change: Change::Insert(file(seed, &name, seed | 1)),
        },
        Request::ApplyChange {
            change: Change::Delete(seed),
        },
        Request::ApplyChange {
            change: Change::Modify(file(seed ^ 0xff, &name, seed)),
        },
        Request::Stats,
    ]
}

/// One representative of every response variant, parameterized.
fn responses(seed: u64, ids: Vec<u64>, dists: Vec<f64>) -> Vec<Response> {
    vec![
        Response::Query(QueryReply {
            file_ids: ids.clone(),
            cost: cost(seed),
        }),
        Response::TopK(TopKReply {
            hits: ids.iter().copied().zip(dists.clone()).collect(),
            cost: cost(seed ^ 1),
        }),
        Response::Applied(AppliedReply {
            shard: if seed.is_multiple_of(2) {
                Some((seed % 9) as usize)
            } else {
                None
            },
            group: if seed.is_multiple_of(3) {
                Some((seed % 33) as usize)
            } else {
                None
            },
        }),
        Response::Stats(StatsReply {
            per_shard: (0..(seed % 5) as usize)
                .map(|i| SystemStats {
                    n_units: i + 1,
                    n_groups: i,
                    tree_height: 2 + i,
                    tree_index_bytes: 1024 * i,
                    per_unit_index_bytes: 128 + i,
                    version_bytes: seed as usize % 4096,
                })
                .collect(),
        }),
        Response::Error(format!("error #{seed}")),
        Response::Unavailable(format!("shard {} is quarantined", seed % 16)),
        Response::Overloaded(format!("{} in flight", seed % 1024)),
        // Degraded wrappers around both answer shapes — one level deep,
        // the only nesting the server ever produces.
        Response::Degraded(DegradedReply {
            partial: Box::new(Response::Query(QueryReply {
                file_ids: ids.clone(),
                cost: cost(seed ^ 2),
            })),
            missing_shards: (0..(seed % 4) as usize).collect(),
        }),
        Response::Degraded(DegradedReply {
            partial: Box::new(Response::TopK(TopKReply {
                hits: ids.iter().copied().zip(dists).collect(),
                cost: cost(seed ^ 3),
            })),
            missing_shards: vec![(seed % 7) as usize],
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn every_request_variant_roundtrips(
        seed in 0u64..u64::MAX,
        name in "[a-zA-Z0-9_./-]{0,60}",
        dims in prop::collection::vec(-1e12f64..1e12, 0..16),
    ) {
        for req in requests(seed, name.clone(), dims.clone()) {
            let wire = encode_request(&req);
            prop_assert_eq!(decode_request(&wire).unwrap(), req);
        }
    }

    #[test]
    fn every_response_variant_roundtrips(
        seed in 0u64..u64::MAX,
        ids in prop::collection::vec(0u64..u64::MAX, 0..40),
        dists in prop::collection::vec(0.0f64..1e18, 0..40),
    ) {
        for resp in responses(seed, ids.clone(), dists.clone()) {
            let wire = encode_response(&resp);
            prop_assert_eq!(decode_response(&wire).unwrap(), resp);
        }
    }

    #[test]
    fn batches_preserve_order_and_content(
        seed in 0u64..u64::MAX,
        name in "[a-z0-9_]{1,20}",
        dims in prop::collection::vec(-100.0f64..100.0, 1..12),
        ids in prop::collection::vec(0u64..1_000_000, 0..20),
        dists in prop::collection::vec(0.0f64..1e9, 0..20),
    ) {
        let reqs = requests(seed, name.clone(), dims.clone());
        let wire = encode_request_batch(&reqs);
        prop_assert_eq!(decode_request_batch(&wire).unwrap(), reqs);

        let resps = responses(seed, ids.clone(), dists.clone());
        let wire = encode_response_batch(&resps);
        prop_assert_eq!(decode_response_batch(&wire).unwrap(), resps);
    }

    #[test]
    fn corruption_is_detected_not_misdecoded(
        seed in 0u64..u64::MAX,
        name in "[a-z0-9_]{1,20}",
        dims in prop::collection::vec(-10.0f64..10.0, 4..10),
        flip in 0usize..10_000,
    ) {
        let reqs = requests(seed, name.clone(), dims.clone());
        let wire = encode_request_batch(&reqs);
        // Truncation is always detected.
        prop_assert!(decode_request_batch(&wire[..wire.len() - 1]).is_err());
        // A bit flip anywhere is either detected or — never — silently
        // accepted with different content.
        let mut bad = wire.clone();
        let at = flip % bad.len();
        bad[at] ^= 0x20;
        if let Ok(decoded) = decode_request_batch(&bad) {
            // CRC collisions are ~2^-32; a flip that decodes must be in
            // a length prefix that still frames identical payloads —
            // accept only exact equality.
            prop_assert_eq!(decoded, reqs);
        }
    }
}

#[test]
fn empty_batch_roundtrips() {
    assert_eq!(
        decode_request_batch(&encode_request_batch(&[])).unwrap(),
        vec![]
    );
    assert_eq!(
        decode_response_batch(&encode_response_batch(&[])).unwrap(),
        vec![]
    );
}

#[test]
fn nested_degraded_is_rejected_not_recursed() {
    // The server never nests degraded markers, and the decoder must
    // refuse one rather than recurse — a crafted buffer of repeated
    // RESP_DEGRADED tags would otherwise descend once per tag and
    // overflow the stack before any structural check fires. The
    // *encoder* will happily serialize a hand-built nested value, which
    // is exactly what a hostile peer could put on the wire.
    let nested = Response::Degraded(DegradedReply {
        partial: Box::new(Response::Degraded(DegradedReply {
            partial: Box::new(Response::Query(QueryReply::default())),
            missing_shards: vec![1],
        })),
        missing_shards: vec![0],
    });
    let mut e = smartstore_persist::codec::Enc::new();
    smartstore_service::codec::put_response(&mut e, &nested);
    let mut wire = Vec::new();
    smartstore_persist::codec::put_record(&mut wire, &e.into_bytes());
    let err = decode_response(&wire).expect_err("nested degraded must not decode");
    assert!(
        format!("{err}").contains("nested degraded"),
        "unexpected error: {err}"
    );
}

#[test]
fn unknown_tags_are_rejected() {
    // A frame with a valid CRC but an unknown payload tag must decode
    // to an error, not panic or misparse.
    let mut buf = Vec::new();
    smartstore_persist::codec::put_record(&mut buf, &[0xEE]);
    assert!(decode_request(&buf).is_err());
    assert!(decode_response(&buf).is_err());
}
