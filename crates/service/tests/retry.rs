//! Retry classification: `Client::call_with_retry` must tell retryable
//! *transport* failures (reconnect + backoff) apart from retryable
//! *typed server* answers (`Overloaded` with jitter, `Unavailable`
//! plain exponential) and from non-retryable outcomes (typed `Error`s,
//! wire decode failures), with each class counted in `ClientStats`.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_service::codec::{decode_request_batch, encode_response_batch};
use smartstore_service::{
    Client, Request, Response, RetryPolicy, Transport, TransportError, TransportResult,
};

/// What the mock transport does on one exchange.
#[derive(Clone, Debug)]
enum Step {
    /// Answer every request in the batch with this response.
    Answer(Response),
    /// Fail the exchange with this error.
    Fail(TransportError),
    /// Return bytes that are not a decodable response batch.
    Garbage,
}

/// A scripted transport: plays `steps` in order (repeating the last
/// one), counting exchanges and reconnects.
struct Scripted {
    steps: Vec<Step>,
    exchanges: usize,
    reconnects: usize,
}

impl Scripted {
    fn new(steps: Vec<Step>) -> Self {
        Self {
            steps,
            exchanges: 0,
            reconnects: 0,
        }
    }
}

impl Transport for Scripted {
    fn exchange(&mut self, request_wire: &[u8], expected: usize) -> TransportResult<Vec<u8>> {
        let step = self.steps[self.exchanges.min(self.steps.len() - 1)].clone();
        self.exchanges += 1;
        let reqs = decode_request_batch(request_wire)?;
        assert_eq!(reqs.len(), expected, "client encodes what it promises");
        match step {
            Step::Answer(resp) => Ok(encode_response_batch(&vec![resp; expected])),
            Step::Fail(e) => Err(e),
            Step::Garbage => Ok(vec![0xde, 0xad, 0xbe, 0xef]),
        }
    }

    fn reconnect(&mut self) -> TransportResult<()> {
        self.reconnects += 1;
        Ok(())
    }
}

fn policy(attempts: u32) -> RetryPolicy {
    RetryPolicy {
        max_attempts: attempts,
        base_backoff_ns: 1_000,
        ..RetryPolicy::default()
    }
}

fn ok_answer() -> Response {
    Response::Applied(Default::default())
}

fn probe() -> Request {
    Request::Stats
}

#[test]
fn transport_errors_reconnect_and_retry() {
    let mut t = Scripted::new(vec![
        Step::Fail(TransportError::Io {
            reason: "connection reset".into(),
        }),
        Step::Fail(TransportError::Closed),
        Step::Answer(ok_answer()),
    ]);
    let mut client = Client::new();
    let resp = client
        .call_with_retry(&mut t, probe(), policy(5))
        .expect("third attempt succeeds");
    assert_eq!(resp, ok_answer());
    assert_eq!(t.exchanges, 3);
    assert_eq!(t.reconnects, 2, "each transport failure reconnects");
    let s = client.stats();
    assert_eq!(s.retries, 2);
    assert_eq!(s.transport_retries, 2);
    assert_eq!(s.overload_retries, 0);
    assert_eq!(s.reconnects, 2);
    // Plain exponential backoff for transport errors: 1000 + 2000.
    assert_eq!(s.backoff_ns, 3_000);
}

#[test]
fn transport_retry_does_not_duplicate_the_batch() {
    // A failed flush keeps the pending batch; the retry must resend it
    // as-is, not enqueue the request a second time.
    let mut t = Scripted::new(vec![
        Step::Fail(TransportError::Closed),
        Step::Answer(ok_answer()),
    ]);
    let mut client = Client::new();
    client
        .call_with_retry(&mut t, probe(), policy(3))
        .expect("retry succeeds");
    // The scripted transport asserts reqs.len() == expected on every
    // exchange; a duplicated enqueue would have tripped it.
    assert_eq!(t.exchanges, 2);
    assert_eq!(client.pending(), 0, "batch cleared after success");
}

#[test]
fn overload_retries_with_jitter() {
    let mut t = Scripted::new(vec![
        Step::Answer(Response::Overloaded("budget exhausted".into())),
        Step::Answer(Response::Overloaded("budget exhausted".into())),
        Step::Answer(ok_answer()),
    ]);
    let mut client = Client::new();
    let resp = client
        .call_with_retry(&mut t, probe(), policy(5))
        .expect("wire ok");
    assert_eq!(resp, ok_answer());
    let s = client.stats();
    assert_eq!(s.retries, 2);
    assert_eq!(s.overload_retries, 2);
    assert_eq!(s.transport_retries, 0);
    assert_eq!(t.reconnects, 0, "the connection is fine; no reconnect");
    // Jittered backoff: each step is in [0.5, 1.5) of the exponential
    // base (1000 then 2000), and never exactly the un-jittered sum.
    assert!(
        (1_500..4_500).contains(&s.backoff_ns),
        "jittered backoff in range, got {}",
        s.backoff_ns
    );
    assert_ne!(s.backoff_ns, 3_000, "jitter must perturb the schedule");
}

#[test]
fn jitter_is_deterministic_under_seed() {
    let run = |seed: u64| {
        let mut t = Scripted::new(vec![
            Step::Answer(Response::Overloaded("shed".into())),
            Step::Answer(Response::Overloaded("shed".into())),
            Step::Answer(ok_answer()),
        ]);
        let mut client = Client::with_seed(seed);
        client
            .call_with_retry(&mut t, probe(), policy(5))
            .expect("wire ok");
        client.stats().backoff_ns
    };
    assert_eq!(run(7), run(7), "same seed, same jitter schedule");
    assert_ne!(run(7), run(8), "different seed, different schedule");
}

#[test]
fn unavailable_retries_without_jitter() {
    let mut t = Scripted::new(vec![
        Step::Answer(Response::Unavailable("shard quarantined".into())),
        Step::Answer(ok_answer()),
    ]);
    let mut client = Client::new();
    let resp = client
        .call_with_retry(&mut t, probe(), policy(3))
        .expect("wire ok");
    assert_eq!(resp, ok_answer());
    let s = client.stats();
    assert_eq!(s.retries, 1);
    assert_eq!(s.transport_retries, 0);
    assert_eq!(s.overload_retries, 0);
    assert_eq!(s.backoff_ns, 1_000, "plain exponential, no jitter");
}

#[test]
fn typed_errors_are_not_retried() {
    let mut t = Scripted::new(vec![
        Step::Answer(Response::Error("dimension mismatch".into())),
        Step::Answer(ok_answer()),
    ]);
    let mut client = Client::new();
    let resp = client
        .call_with_retry(&mut t, probe(), policy(5))
        .expect("wire ok");
    assert!(matches!(resp, Response::Error(_)), "error returned as-is");
    assert_eq!(t.exchanges, 1, "no retry for a non-retryable answer");
    assert_eq!(client.stats().retries, 0);
}

#[test]
fn decode_errors_are_not_retried() {
    let mut t = Scripted::new(vec![Step::Garbage, Step::Answer(ok_answer())]);
    let mut client = Client::new();
    let err = client
        .call_with_retry(&mut t, probe(), policy(5))
        .expect_err("garbage bytes are a hard failure");
    assert!(
        matches!(err, TransportError::Wire(_)),
        "decode failure surfaces typed, got {err}"
    );
    assert_eq!(t.exchanges, 1, "a decode error is never retried");
    assert_eq!(client.stats().transport_retries, 0);
}

#[test]
fn retry_budget_is_bounded() {
    let mut t = Scripted::new(vec![Step::Fail(TransportError::Closed)]);
    let mut client = Client::new();
    let err = client
        .call_with_retry(&mut t, probe(), policy(4))
        .expect_err("all attempts fail");
    assert_eq!(err, TransportError::Closed);
    assert_eq!(t.exchanges, 4, "max_attempts total attempts");
    assert_eq!(client.stats().retries, 3);
    assert_eq!(client.stats().transport_retries, 3);
}

#[test]
fn overloaded_merges_as_transient_and_is_retryable() {
    // Protocol-level invariants the retry loop depends on.
    assert!(Response::Overloaded("x".into()).is_retryable());
    assert!(Response::Unavailable("x".into()).is_retryable());
    assert!(!Response::Error("x".into()).is_retryable());
    let req = Request::Point { name: "f".into() };
    let merged = smartstore_service::merge_responses(
        &req,
        vec![
            Response::Query(Default::default()),
            Response::Overloaded("shed".into()),
        ],
    );
    assert!(matches!(merged, Response::Overloaded(_)));
}
