//! Sharding parity: a [`MetadataServer`] must answer every query
//! *bit-identically* to a single unsharded [`SmartStoreSystem`] over
//! the same trace — on point, range and top-k, in both route modes,
//! across shard counts, through a live change stream, and after a cold
//! restart from the shards' snapshot + WAL directories.
//!
//! Why this holds (and what it pins down): answer sets depend only on
//! the stored metadata plus version-chain recovery, never on how files
//! are partitioned into units/shards — MBR and Bloom routing are
//! conservative, per-file change history stays within one shard, and
//! the client merge uses exactly the single system's normalization
//! (sorted-deduped ids; `(distance, id)`-ordered top-k).

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore::versioning::Change;
use smartstore::{QueryOptions, SmartStoreConfig, SmartStoreSystem};
use smartstore_service::{Client, MetadataServer, Request, Response, ServerConfig};
use smartstore_trace::query_gen::QueryGenConfig;
use smartstore_trace::{
    FileMetadata, GeneratorConfig, MetadataPopulation, QueryDistribution, QueryWorkload,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

const TOTAL_UNITS: usize = 24;

static DIR_COUNTER: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let n = DIR_COUNTER.fetch_add(1, Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!(
        "smartstore_parity_{tag}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn population(n: usize, seed: u64) -> MetadataPopulation {
    MetadataPopulation::generate(GeneratorConfig {
        n_files: n,
        n_clusters: 24,
        seed,
        ..GeneratorConfig::default()
    })
}

fn single(pop: &MetadataPopulation, seed: u64) -> SmartStoreSystem {
    SmartStoreSystem::build(
        pop.files.clone(),
        TOTAL_UNITS,
        SmartStoreConfig::default(),
        seed,
    )
}

fn server(
    pop: &MetadataPopulation,
    n_shards: usize,
    seed: u64,
    store_dir: Option<PathBuf>,
) -> MetadataServer {
    MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards,
            units_per_shard: TOTAL_UNITS / n_shards,
            seed,
            store_dir,
            ..ServerConfig::default()
        },
    )
    .expect("server builds")
}

fn workload(pop: &MetadataPopulation, seed: u64) -> QueryWorkload {
    QueryWorkload::generate(
        pop,
        &QueryGenConfig {
            n_range: 25,
            n_topk: 25,
            n_point: 25,
            k: 8,
            distribution: QueryDistribution::Zipf,
            seed,
            ..Default::default()
        },
    )
}

/// Runs the full workload against both deployments and asserts every
/// answer identical (both route modes for the complex queries).
fn assert_parity(reference: &SmartStoreSystem, srv: &mut MetadataServer, w: &QueryWorkload) {
    let engine = reference.query();
    let mut client = Client::new();
    for opts in [QueryOptions::offline(), QueryOptions::online()] {
        for (i, q) in w.ranges.iter().enumerate() {
            let expect = engine.range(&q.lo, &q.hi, &opts).file_ids;
            let resp = client
                .call(
                    srv,
                    Request::Range {
                        lo: q.lo.clone(),
                        hi: q.hi.clone(),
                        opts,
                    },
                )
                .expect("wire ok");
            match resp {
                Response::Query(r) => assert_eq!(
                    r.file_ids,
                    expect,
                    "range {i} diverged ({:?}, {} shards)",
                    opts.mode,
                    srv.n_shards()
                ),
                other => panic!("range {i}: unexpected response {other:?}"),
            }
        }
        for (i, q) in w.topks.iter().enumerate() {
            let o = opts.with_k(q.k);
            let expect = engine.topk(&q.point, &o).file_ids;
            let resp = client
                .call(
                    srv,
                    Request::TopK {
                        point: q.point.clone(),
                        opts: o,
                    },
                )
                .expect("wire ok");
            match resp {
                Response::TopK(r) => assert_eq!(
                    r.file_ids(),
                    expect,
                    "topk {i} diverged ({:?}, {} shards)",
                    opts.mode,
                    srv.n_shards()
                ),
                other => panic!("topk {i}: unexpected response {other:?}"),
            }
        }
    }
    for (i, q) in w.points.iter().enumerate() {
        let expect = engine.point(&q.name).file_ids;
        let resp = client
            .call(
                srv,
                Request::Point {
                    name: q.name.clone(),
                },
            )
            .expect("wire ok");
        match resp {
            Response::Query(r) => assert_eq!(
                r.file_ids,
                expect,
                "point {i} ({}) diverged ({} shards)",
                q.name,
                srv.n_shards()
            ),
            other => panic!("point {i}: unexpected response {other:?}"),
        }
    }
}

/// A deterministic change stream: far-moving modifies (stale-MBR
/// recovery), deletes, and semantically fresh inserts.
fn change_stream(files: &[FileMetadata]) -> Vec<Change> {
    let mut out = Vec::new();
    for (i, f) in files.iter().enumerate() {
        match i % 9 {
            0 => {
                let mut g = f.clone();
                g.size = g.size.saturating_mul(1000).max(1 << 30);
                g.mtime = (g.mtime * 2.0).max(1.0);
                out.push(Change::Modify(g));
            }
            4 => out.push(Change::Delete(f.file_id)),
            7 => {
                let mut g = f.clone();
                g.file_id = 5_000_000 + i as u64;
                g.name = format!("svc_fresh_{i}");
                g.atime += 3.5;
                out.push(Change::Insert(g));
            }
            _ => {}
        }
    }
    out
}

#[test]
fn fresh_build_parity_across_shard_counts() {
    let pop = population(3000, 71);
    let reference = single(&pop, 71);
    let w = workload(&pop, 5);
    for shards in [1, 2, 4] {
        let mut srv = server(&pop, shards, 71, None);
        assert_eq!(srv.n_shards(), shards);
        assert_parity(&reference, &mut srv, &w);
    }
}

#[test]
fn parity_survives_a_change_stream() {
    let pop = population(2600, 72);
    let mut reference = single(&pop, 72);
    let mut srv = server(&pop, 4, 72, None);
    let mut client = Client::new();

    for ch in change_stream(&pop.files) {
        reference.apply_change(ch.clone());
        let resp = client
            .call(&mut srv, Request::ApplyChange { change: ch })
            .expect("wire ok");
        assert!(
            matches!(resp, Response::Applied(_)),
            "mutation must ack: {resp:?}"
        );
    }

    // Queries over the *mutated* population exercise version-chain
    // recovery on both sides.
    let w = workload(&pop, 6);
    assert_parity(&reference, &mut srv, &w);

    // The fresh inserts are found by name through version recovery.
    let engine = reference.query();
    for i in [7usize, 16, 25] {
        let name = format!("svc_fresh_{i}");
        let expect = engine.point(&name).file_ids;
        assert!(!expect.is_empty(), "reference must find {name}");
        match client.call(&mut srv, Request::Point { name }).unwrap() {
            Response::Query(r) => assert_eq!(r.file_ids, expect),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn parity_after_cold_restart_from_shard_stores() {
    let dir = tmpdir("cold");
    let pop = population(2200, 73);
    let mut reference = single(&pop, 73);
    {
        let mut srv = server(&pop, 2, 73, Some(dir.clone()));
        let mut client = Client::new();
        for ch in change_stream(&pop.files) {
            reference.apply_change(ch.clone());
            client
                .call(&mut srv, Request::ApplyChange { change: ch })
                .expect("wire ok");
        }
        srv.sync().expect("wal sync");
        // Each shard journals only its own groups into its own WAL.
        for info in srv.layout() {
            let d = info.dir.expect("durable shard has a dir");
            assert!(d.join("MANIFEST").exists(), "shard store at {d:?}");
        }
        // Server dropped here: simulated crash/restart boundary.
    }
    let mut reopened = MetadataServer::open(&dir).expect("cold start");
    assert_eq!(reopened.n_shards(), 2);
    let w = workload(&pop, 7);
    assert_parity(&reference, &mut reopened, &w);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_aggregate_over_shards() {
    let pop = population(2400, 74);
    let mut srv = server(&pop, 4, 74, None);
    let mut client = Client::new();
    match client.call(&mut srv, Request::Stats).unwrap() {
        Response::Stats(s) => {
            assert_eq!(s.per_shard.len(), 4);
            assert_eq!(s.total_units(), TOTAL_UNITS);
            assert!(s.total_groups() >= 4, "every shard has groups");
        }
        other => panic!("unexpected {other:?}"),
    }
    // The published group→server mapping covers every shard.
    let map = srv.group_map();
    let shards: std::collections::HashSet<usize> = map.iter().map(|&(s, _)| s).collect();
    assert_eq!(shards.len(), 4);
}

#[test]
fn mutations_route_to_owning_shards() {
    let pop = population(2000, 75);
    let mut srv = server(&pop, 4, 75, None);
    let mut client = Client::new();

    // Insert acks with the chosen shard and landing group.
    let mut f = pop.files[0].clone();
    f.file_id = 9_999_999;
    f.name = "routed_insert".into();
    let ack = client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Insert(f),
            },
        )
        .unwrap();
    let inserted_shard = match ack {
        Response::Applied(a) => {
            assert!(a.group.is_some(), "insert lands in a group");
            a.shard.expect("insert targets a shard")
        }
        other => panic!("unexpected {other:?}"),
    };

    // Deleting it routes to the very shard that absorbed it.
    let ack = client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Delete(9_999_999),
            },
        )
        .unwrap();
    match ack {
        Response::Applied(a) => assert_eq!(a.shard, Some(inserted_shard)),
        other => panic!("unexpected {other:?}"),
    }

    // Mutating an unknown file is an explicit no-op on every layer.
    let ack = client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Delete(123_456_789),
            },
        )
        .unwrap();
    assert_eq!(
        ack,
        Response::Applied(smartstore_service::AppliedReply {
            shard: None,
            group: None
        })
    );
}

#[test]
fn concurrent_readers_on_the_served_view() {
    // serve_read is &self: several client threads can read one server
    // while it is not being written, and answers equal the sequential
    // ones.
    let pop = population(2000, 76);
    let srv = server(&pop, 2, 76, None);
    let w = workload(&pop, 8);
    let reqs: Vec<Request> = w
        .ranges
        .iter()
        .map(|q| Request::Range {
            lo: q.lo.clone(),
            hi: q.hi.clone(),
            opts: QueryOptions::offline(),
        })
        .chain(w.points.iter().map(|q| Request::Point {
            name: q.name.clone(),
        }))
        .collect();
    let expected: Vec<Response> = reqs.iter().map(|r| srv.serve_read(r)).collect();
    std::thread::scope(|s| {
        let a = s.spawn(|| reqs.iter().map(|r| srv.serve_read(r)).collect::<Vec<_>>());
        let b = s.spawn(|| reqs.iter().map(|r| srv.serve_read(r)).collect::<Vec<_>>());
        assert_eq!(a.join().unwrap(), expected);
        assert_eq!(b.join().unwrap(), expected);
    });
}

#[test]
fn malformed_wire_requests_error_instead_of_panicking() {
    // Any f64 bit pattern decodes from the wire; the server must
    // reject non-finite or inverted inputs, never panic a shard.
    let pop = population(2000, 77);
    let mut srv = server(&pop, 2, 77, None);
    let mut client = Client::new();
    let dims = pop.files[0].attr_vector().len();

    let bad = [
        Request::TopK {
            point: vec![f64::NAN; dims],
            opts: QueryOptions::offline(),
        },
        Request::Range {
            lo: vec![f64::NEG_INFINITY; dims],
            hi: vec![1.0; dims],
            opts: QueryOptions::offline(),
        },
        Request::Range {
            lo: vec![5.0; dims],
            hi: vec![-5.0; dims], // inverted
            opts: QueryOptions::offline(),
        },
        Request::Range {
            lo: vec![0.0; 2], // wrong arity
            hi: vec![1.0; 2],
            opts: QueryOptions::offline(),
        },
        Request::ApplyChange {
            change: Change::Insert({
                let mut f = pop.files[0].clone();
                f.file_id = 8_000_000;
                f.ctime = f64::NAN;
                f
            }),
        },
    ];
    for req in bad {
        let resp = client.call(&mut srv, req.clone()).expect("wire ok");
        assert!(
            matches!(resp, Response::Error(_)),
            "{req:?} must be rejected, got {resp:?}"
        );
    }
    // The server still serves good requests afterwards.
    let name = pop.files[42].name.clone();
    assert!(matches!(
        client.call(&mut srv, Request::Point { name }).unwrap(),
        Response::Query(_)
    ));
}

#[test]
fn cold_start_refuses_a_partial_fleet() {
    let dir = tmpdir("partial");
    let pop = population(2000, 78);
    {
        let _srv = server(&pop, 2, 78, Some(dir.clone()));
    }
    // Losing one shard directory must fail the open loudly — a smaller
    // fleet would silently answer with missing files.
    std::fs::remove_dir_all(dir.join("shard-0001")).unwrap();
    assert!(
        MetadataServer::open(&dir).is_err(),
        "open must refuse a fleet missing shard-0001"
    );
    // And without the fleet manifest there is no deployment to trust.
    std::fs::remove_file(dir.join("FLEET")).unwrap();
    assert!(MetadataServer::open(&dir).is_err());
    let _ = std::fs::remove_dir_all(&dir);
}
