//! Columnar-projection coherence and bit-identity tests.
//!
//! The storage unit keeps a derived SoA projection (flat coords table,
//! id column, name→slot map) next to the record vec. These properties
//! pin the two invariants the columnar read path rests on:
//!
//! 1. **Coherence** — after *any* interleaving of raw and non-raw
//!    mutations (inserts, removals, bulk removal, in-place modifies,
//!    summary recomputes), the projection equals a from-scratch rebuild
//!    from the record vec.
//! 2. **Bit-identity** — the columnar query path answers exactly like
//!    the pre-columnar record walk, kept here as a reference
//!    implementation: per-record `attr_vector()` scans, a full
//!    sort-then-truncate top-k, and a prefix name scan for point
//!    lookups. System-level `QueryOutcome`s (range/top-k/point, both
//!    route modes) must also be bit-identical between a live mutated
//!    system and its `from_parts(to_parts())` reopen, which rebuilds
//!    every unit's projection from serialized records.

use proptest::prelude::*;
use smartstore::config::SmartStoreConfig;
use smartstore::grouping::{
    partition_balanced, partition_balanced_flat, partition_tiled, partition_tiled_flat,
};
use smartstore::query::QueryOptions;
use smartstore::routing::RouteMode;
use smartstore::system::SmartStoreSystem;
use smartstore::unit::StorageUnit;
use smartstore::versioning::Change;
use smartstore_rtree::Rect;
use smartstore_trace::{FileMetadata, ATTR_DIMS};

// ---------------------------------------------------------------------
// Reference implementation: the pre-columnar record walk.
// ---------------------------------------------------------------------

/// Pre-columnar point lookup: Bloom probe, then prefix scan in store
/// order. Returns the hit and the number of records the scan examined.
fn ref_point<'a>(u: &'a StorageUnit, name: &str) -> (Option<&'a FileMetadata>, usize) {
    if !u.bloom().contains(name.as_bytes()) {
        return (None, 0);
    }
    let mut records = 0;
    for f in u.files() {
        records += 1;
        if f.name == name {
            return (Some(f), records);
        }
    }
    (None, records)
}

/// Pre-columnar range scan: MBR pre-check, then a per-record
/// `attr_vector()` walk.
fn ref_range(u: &StorageUnit, lo: &[f64], hi: &[f64]) -> (Vec<u64>, usize) {
    if let Some(m) = u.mbr() {
        let q = Rect::new(lo.to_vec(), hi.to_vec());
        if !m.intersects(&q) {
            return (Vec::new(), 0);
        }
    }
    let mut out = Vec::new();
    for f in u.files() {
        let v = f.attr_vector();
        if v.iter()
            .zip(lo.iter().zip(hi))
            .all(|(&x, (&l, &h))| l <= x && x <= h)
        {
            out.push(f.file_id);
        }
    }
    (out, u.files().len())
}

/// Pre-columnar top-k: score every record, full sort by
/// `(distance, id)`, truncate.
fn ref_topk(u: &StorageUnit, point: &[f64], k: usize) -> Vec<(u64, f64)> {
    let mut scored: Vec<(u64, f64)> = u
        .files()
        .iter()
        .map(|f| {
            let d = f
                .attr_vector()
                .iter()
                .zip(point)
                .map(|(&a, &q)| (a - q) * (a - q))
                .sum::<f64>();
            (f.file_id, d)
        })
        .collect();
    scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

// ---------------------------------------------------------------------
// Mutation-stream machinery.
// ---------------------------------------------------------------------

/// Deterministic synthetic record. Names repeat (`id % 7`) so duplicate
/// filenames within one unit are a routine occurrence, not a corner
/// case.
fn make_file(id: u64, salt: u64) -> FileMetadata {
    FileMetadata {
        file_id: id,
        name: format!("f{}", id % 7),
        dir: "/d".into(),
        owner: (salt % 5) as u32,
        size: 100 + (id * 37 + salt * 13) % 100_000,
        ctime: (id as f64 * 11.0 + salt as f64) % 5000.0,
        mtime: (id as f64 * 17.0 + salt as f64 * 3.0) % 5000.0,
        atime: (id as f64 * 23.0 + salt as f64 * 7.0) % 5000.0,
        read_bytes: (id * 101 + salt) % 1_000_000,
        write_bytes: (id * 53) % 500_000,
        access_count: ((id + salt) % 300) as u32,
        proc_id: ((id * 3 + salt) % 16) as u32,
        truth_cluster: None,
    }
}

/// One step of an arbitrary interleaved mutation stream; `a`/`b` are
/// free parameters the op interprets against the unit's current state.
#[derive(Clone, Copy, Debug)]
struct Op {
    kind: u8,
    a: u16,
    b: u16,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..7, any::<u16>(), any::<u16>()).prop_map(|(kind, a, b)| Op { kind, a, b })
}

fn apply_op(u: &mut StorageUnit, op: Op, next_id: &mut u64) {
    let pick = |n: usize, x: u16| x as usize % n.max(1);
    match op.kind {
        // Summary-refreshing insert.
        0 => {
            *next_id += 1;
            u.insert_file(make_file(*next_id, op.b as u64));
        }
        // Raw insert (summaries stay stale).
        1 => {
            *next_id += 1;
            u.insert_file_raw(make_file(*next_id, op.b as u64));
        }
        // Summary-refreshing removal of an existing file.
        2 => {
            if !u.is_empty() {
                let id = u.files()[pick(u.len(), op.a)].file_id;
                u.remove_file(id);
            }
        }
        // Raw removal.
        3 => {
            if !u.is_empty() {
                let id = u.files()[pick(u.len(), op.a)].file_id;
                u.remove_file_raw(id);
            }
        }
        // In-place modify, sometimes renaming the record.
        4 => {
            if !u.is_empty() {
                let mut f = u.files()[pick(u.len(), op.a)].clone();
                f.size = f.size.wrapping_add(op.b as u64) % 1_000_000;
                f.atime = (f.atime + 1.0) % 5000.0;
                if op.b.is_multiple_of(3) {
                    f.name = format!("f{}", op.b % 11);
                }
                u.modify_file_raw(f);
            }
        }
        // Lazy-update refresh.
        5 => u.recompute_summaries(),
        // Bulk removal: every (b%4 + 2)-th file in one compaction.
        _ => {
            let stride = (op.b as usize % 4) + 2;
            let ids: Vec<u64> = u
                .files()
                .iter()
                .step_by(stride)
                .map(|f| f.file_id)
                .collect();
            u.remove_files(&ids);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Coherence + unit-level bit-identity under arbitrary interleaved
    /// raw/non-raw mutation streams.
    #[test]
    fn columnar_projection_stays_coherent(
        n_seed in 0usize..30,
        ops in prop::collection::vec(op_strategy(), 0..60),
        probe in any::<u16>(),
    ) {
        let seed_files: Vec<FileMetadata> =
            (0..n_seed as u64).map(|i| make_file(i, 1)).collect();
        let mut u = StorageUnit::new(0, 512, 5, seed_files);
        let mut next_id = n_seed as u64;
        for op in ops {
            apply_op(&mut u, op, &mut next_id);
            prop_assert!(u.check_columnar_coherence().is_ok(),
                "incoherent after {op:?}: {:?}", u.check_columnar_coherence());
        }

        // Point: every live name plus a ghost answers identically to
        // the prefix scan (the indexed lookup must find the *first*
        // slot in store order even with duplicate names).
        for name in ["f0", "f3", "f6", "ghost_name"] {
            let (got, work) = u.point_query(name);
            let (want, _) = ref_point(&u, name);
            prop_assert_eq!(got.map(|f| f.file_id), want.map(|f| f.file_id));
            if got.is_some() {
                prop_assert_eq!(work.records, 1, "indexed lookup examines one record");
            }
        }

        // Range and top-k around a probe file (or a fixed box when the
        // unit drained): flat-table scan ≡ record walk, bit for bit.
        let v = if u.is_empty() {
            [0.5; ATTR_DIMS]
        } else {
            u.files()[probe as usize % u.len()].attr_vector()
        };
        let lo: Vec<f64> = v.iter().map(|x| x - 0.7).collect();
        let hi: Vec<f64> = v.iter().map(|x| x + 0.7).collect();
        let (ids, work) = u.range_query(&lo, &hi);
        let (want_ids, want_records) = ref_range(&u, &lo, &hi);
        prop_assert_eq!(ids, want_ids);
        prop_assert_eq!(work.records, want_records);

        for k in [0usize, 1, 4, 1000] {
            let (top, work) = u.topk_query(&v, k);
            let want = ref_topk(&u, &v, k);
            prop_assert_eq!(top.len(), want.len());
            for (a, b) in top.iter().zip(&want) {
                prop_assert_eq!(a.0, b.0);
                prop_assert!(a.1.to_bits() == b.1.to_bits(),
                    "distance bits diverged: {} vs {}", a.1, b.1);
            }
            prop_assert_eq!(work.records, u.len());
        }
    }

    /// System-level `QueryOutcome` bit-identity: a live system mutated
    /// through the change stream answers exactly like its
    /// `from_parts(to_parts())` reopen, whose units rebuilt their
    /// columnar projection from serialized records.
    #[test]
    fn query_outcomes_survive_projection_rebuild(
        stream in prop::collection::vec((0u8..3, any::<u16>(), any::<u16>()), 0..40),
        probe in any::<u16>(),
    ) {
        let base: Vec<FileMetadata> = (0..120u64).map(|i| make_file(i, 2)).collect();
        let mut sys = SmartStoreSystem::build(base, 6, SmartStoreConfig::default(), 9);
        let mut next_id = 200u64;
        for (kind, a, b) in stream {
            let change = match kind {
                0 => {
                    next_id += 1;
                    Change::Insert(make_file(next_id, b as u64))
                }
                1 => {
                    let files = sys.current_files();
                    if files.is_empty() { continue; }
                    Change::Delete(files[a as usize % files.len()].file_id)
                }
                _ => {
                    let files = sys.current_files();
                    if files.is_empty() { continue; }
                    let mut f = files[a as usize % files.len()].clone();
                    f.size = f.size.wrapping_add(b as u64) % 1_000_000;
                    Change::Modify(f)
                }
            };
            sys.apply_change(change);
        }
        let reopened = SmartStoreSystem::from_parts(sys.to_parts());
        for u in reopened.units() {
            prop_assert!(u.check_columnar_coherence().is_ok());
        }

        let files = sys.current_files();
        prop_assume!(!files.is_empty());
        let f = &files[probe as usize % files.len()];
        let v = f.attr_vector();
        let lo: Vec<f64> = v.iter().map(|x| x - 0.4).collect();
        let hi: Vec<f64> = v.iter().map(|x| x + 0.4).collect();
        for mode in RouteMode::ALL {
            let opts = QueryOptions::with_mode(mode).with_k(5);
            prop_assert_eq!(
                sys.query().range(&lo, &hi, &opts),
                reopened.query().range(&lo, &hi, &opts)
            );
            prop_assert_eq!(
                sys.query().topk(&v, &opts),
                reopened.query().topk(&v, &opts)
            );
            let (s1, o1) = sys.query().topk_scored(&v, &opts);
            let (s2, o2) = reopened.query().topk_scored(&v, &opts);
            prop_assert_eq!(o1, o2);
            prop_assert_eq!(s1.len(), s2.len());
            for (a, b) in s1.iter().zip(&s2) {
                prop_assert_eq!(a.0, b.0);
                prop_assert!(a.1.to_bits() == b.1.to_bits());
            }
        }
        prop_assert_eq!(sys.query().point(&f.name), reopened.query().point(&f.name));
        prop_assert_eq!(sys.query().point("ghost"), reopened.query().point("ghost"));
    }

    /// The flat (SoA) partition entry points are bit-identical to the
    /// slice-of-vectors forms over the same values.
    #[test]
    fn flat_partitions_match_vec_partitions(
        n in 8usize..60,
        n_parts in 2usize..6,
        seed in any::<u64>(),
    ) {
        prop_assume!(n >= n_parts);
        let files: Vec<FileMetadata> = (0..n as u64).map(|i| make_file(i, seed % 97)).collect();
        let vectors: Vec<Vec<f64>> =
            files.iter().map(|f| f.attr_vector().to_vec()).collect();
        let table = smartstore_trace::attr_table(&files);
        prop_assert_eq!(
            partition_tiled(&vectors, n_parts, 3),
            partition_tiled_flat(&table, ATTR_DIMS, n_parts, 3)
        );
        prop_assert_eq!(
            partition_balanced(&vectors, n_parts, 3, seed),
            partition_balanced_flat(&table, ATTR_DIMS, n_parts, 3, seed)
        );
    }
}

/// NaN query points must not panic the top-k path (the pre-columnar
/// sort's `partial_cmp().unwrap()` did) — `total_cmp` gives them a
/// deterministic order instead.
#[test]
fn topk_with_nan_point_does_not_panic() {
    let files: Vec<FileMetadata> = (0..20u64).map(|i| make_file(i, 3)).collect();
    let u = StorageUnit::new(0, 512, 5, files);
    let mut q = [0.0; ATTR_DIMS];
    q[2] = f64::NAN;
    let (top, work) = u.topk_query(&q, 5);
    assert_eq!(top.len(), 5);
    assert_eq!(work.records, 20);
}
