//! Parallel ≡ sequential: the grouping pipeline must produce
//! **bit-identical** results at every thread count.
//!
//! The shim-rayon pool guarantees length-only chunking and in-order
//! partial combination; these tests pin the property where it matters
//! — the O(n²) similarity kernel, one-level grouping, and balanced
//! partitioning — by running the same input under a 1-thread pool
//! (sequential execution) and multi-thread pools and requiring exact
//! `f64` equality.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use proptest::prelude::*;
use rayon::ThreadPoolBuilder;
use smartstore::grouping::{group_level, kernel_similarities, partition_balanced, wcss};

fn vec_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((-500i32..500).prop_map(|v| v as f64 / 13.0), 6),
        n,
    )
}

/// Runs `f` under a pool of `threads` logical threads.
fn with_threads<R>(threads: usize, f: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool builds")
        .install(f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn kernel_similarities_parallel_matches_sequential_exactly(
        vectors in vec_strategy(2..60),
        rank in 1usize..4,
    ) {
        let sequential = with_threads(1, || kernel_similarities(&vectors, rank));
        for threads in [2usize, 4, 8] {
            let parallel = with_threads(threads, || kernel_similarities(&vectors, rank));
            prop_assert_eq!(sequential.len(), parallel.len());
            for (i, (rs, rp)) in sequential.iter().zip(&parallel).enumerate() {
                for (j, (s, p)) in rs.iter().zip(rp).enumerate() {
                    prop_assert!(
                        s.to_bits() == p.to_bits(),
                        "sims[{}][{}] differ at {} threads: {} vs {}",
                        i, j, threads, s, p
                    );
                }
            }
        }
    }

    #[test]
    fn group_level_parallel_matches_sequential_exactly(
        vectors in vec_strategy(2..50),
        eps in 0.5f64..0.99,
    ) {
        let seq = with_threads(1, || group_level(&vectors, eps, 2, 8));
        let par = with_threads(4, || group_level(&vectors, eps, 2, 8));
        prop_assert_eq!(&seq.groups, &par.groups);
        // Centroids are f64 — require exact bit equality, not closeness.
        prop_assert_eq!(seq.centroids.len(), par.centroids.len());
        for (cs, cp) in seq.centroids.iter().zip(&par.centroids) {
            for (a, b) in cs.iter().zip(cp) {
                prop_assert!(a.to_bits() == b.to_bits());
            }
        }
        let ws = with_threads(1, || wcss(&vectors, &seq.groups));
        let wp = with_threads(4, || wcss(&vectors, &par.groups));
        prop_assert!(ws.to_bits() == wp.to_bits());
    }

    #[test]
    fn partition_balanced_parallel_matches_sequential_exactly(
        vectors in vec_strategy(8..80),
        seed in 0u64..1000,
    ) {
        let parts = 4usize.min(vectors.len());
        let seq = with_threads(1, || partition_balanced(&vectors, parts, 3, seed));
        let par = with_threads(4, || partition_balanced(&vectors, parts, 3, seed));
        prop_assert_eq!(seq, par);
    }
}
