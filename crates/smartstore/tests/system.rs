//! End-to-end tests of the assembled SmartStore system: build, query
//! correctness/recall, change streams, versioning, reconfiguration.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore::versioning::Change;
use smartstore::QueryOptions;
use smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_trace::query_gen::{recall, QueryGenConfig};
use smartstore_trace::{GeneratorConfig, MetadataPopulation, QueryDistribution, QueryWorkload};

fn population(n: usize, seed: u64) -> MetadataPopulation {
    MetadataPopulation::generate(GeneratorConfig {
        n_files: n,
        n_clusters: 24,
        seed,
        ..GeneratorConfig::default()
    })
}

fn system(n_files: usize, n_units: usize, seed: u64) -> (SmartStoreSystem, MetadataPopulation) {
    let pop = population(n_files, seed);
    let sys = SmartStoreSystem::build(
        pop.files.clone(),
        n_units,
        SmartStoreConfig::default(),
        seed,
    );
    (sys, pop)
}

#[test]
fn build_preserves_every_file() {
    let (sys, pop) = system(2000, 20, 7);
    let mut stored: Vec<u64> = sys.current_files().iter().map(|f| f.file_id).collect();
    stored.sort_unstable();
    let mut expected: Vec<u64> = pop.files.iter().map(|f| f.file_id).collect();
    expected.sort_unstable();
    assert_eq!(stored, expected);
    sys.tree().check_invariants().unwrap();
}

#[test]
fn units_are_balanced() {
    // Gap-aware tiling trades exact balance for cluster integrity:
    // "group sizes are approximately equal" (Statement 1) — every unit
    // non-empty and within ±50% of the even share.
    let (sys, _) = system(2000, 20, 8);
    let even = 2000 / 20;
    let min = sys.units().iter().map(|u| u.len()).min().unwrap();
    let max = sys.units().iter().map(|u| u.len()).max().unwrap();
    assert!(min > 0, "no unit may be empty");
    assert!(
        min * 2 >= even && max <= even * 2,
        "approximately balanced: min {min}, max {max}, even {even}"
    );
}

#[test]
fn range_query_has_perfect_recall_on_fresh_index() {
    let (sys, pop) = system(2000, 20, 9);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 40,
            n_topk: 0,
            n_point: 0,
            distribution: QueryDistribution::Zipf,
            seed: 1,
            ..Default::default()
        },
    );
    for q in &w.ranges {
        let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
        let r = recall(&q.ideal, &out.file_ids);
        assert!(
            r > 0.999,
            "fresh index must answer ranges exactly, recall {r}"
        );
        // And no spurious results either.
        for id in &out.file_ids {
            assert!(q.ideal.contains(id), "spurious id {id}");
        }
    }
}

#[test]
fn topk_query_recall_on_fresh_index() {
    let (sys, pop) = system(2000, 20, 10);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 0,
            n_topk: 40,
            n_point: 0,
            k: 8,
            distribution: QueryDistribution::Zipf,
            seed: 2,
            ..Default::default()
        },
    );
    let mut total = 0.0;
    for q in &w.topks {
        let out = sys
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k));
        assert_eq!(out.file_ids.len(), 8);
        total += recall(&q.ideal, &out.file_ids);
    }
    let avg = total / 40.0;
    assert!(
        avg > 0.999,
        "MaxD-pruned top-k must equal exhaustive, got {avg}"
    );
}

#[test]
fn point_query_finds_files_and_rejects_ghosts() {
    let (sys, pop) = system(1500, 15, 11);
    let mut hits = 0;
    for f in pop.files.iter().step_by(37) {
        let out = sys.query().point(&f.name);
        if out.file_ids.contains(&f.file_id) {
            hits += 1;
        }
    }
    let probed = pop.files.iter().step_by(37).count();
    assert!(
        hits as f64 / probed as f64 > 0.88,
        "paper's point-query hit rate floor: {hits}/{probed}"
    );
    let ghost = sys.query().point("ghost_file_does_not_exist");
    assert!(ghost.file_ids.is_empty());
}

#[test]
fn topk_visits_few_units_thanks_to_maxd() {
    let (sys, pop) = system(3000, 30, 12);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_topk: 30,
            n_range: 0,
            n_point: 0,
            distribution: QueryDistribution::Zipf,
            seed: 3,
            ..Default::default()
        },
    );
    let mut total_units = 0;
    for q in &w.topks {
        let out = sys
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k));
        total_units += out.cost.units_probed;
    }
    let avg = total_units as f64 / 30.0;
    assert!(
        avg < 30.0 * 0.8,
        "MaxD pruning should avoid probing most of the 30 units (avg {avg})"
    );
}

#[test]
fn versioning_recovers_recall_after_changes() {
    let (mut sys_v, pop) = system(2000, 20, 13);
    let (mut sys_nv, _) = system(2000, 20, 13);
    sys_v.set_versioning(true);
    sys_nv.set_versioning(false);

    // Mutate 10% of files: push them to a far corner of attribute space
    // so stale MBRs miss them.
    let mut current = pop.files.clone();
    for f in current.iter_mut().step_by(10) {
        f.size = f.size.saturating_mul(1000).max(1 << 30);
        f.mtime = (f.mtime * 2.0).max(1.0);
        let ch = Change::Modify(f.clone());
        sys_v.apply_change(ch.clone());
        sys_nv.apply_change(ch);
    }

    // Re-derive ideal answers on the mutated state.
    let scratch = MetadataPopulation {
        files: current.clone(),
        config: pop.config.clone(),
    };
    let w = QueryWorkload::generate(
        &scratch,
        &QueryGenConfig {
            n_range: 40,
            n_topk: 0,
            n_point: 0,
            distribution: QueryDistribution::Zipf,
            seed: 4,
            ..Default::default()
        },
    );
    let (mut rec_v, mut rec_nv) = (0.0, 0.0);
    for q in &w.ranges {
        rec_v += recall(
            &q.ideal,
            &sys_v
                .query()
                .range(&q.lo, &q.hi, &QueryOptions::offline())
                .file_ids,
        );
        rec_nv += recall(
            &q.ideal,
            &sys_nv
                .query()
                .range(&q.lo, &q.hi, &QueryOptions::offline())
                .file_ids,
        );
    }
    rec_v /= 40.0;
    rec_nv /= 40.0;
    assert!(
        rec_v >= rec_nv,
        "versioning must not hurt recall: {rec_v} vs {rec_nv}"
    );
    assert!(rec_v > 0.95, "versioned recall should be high, got {rec_v}");
}

#[test]
fn versioning_costs_extra_latency_and_space() {
    let (mut sys, pop) = system(1000, 10, 14);
    sys.set_versioning(true);
    // Record a batch of modifications.
    for f in pop.files.iter().step_by(5) {
        let mut g = f.clone();
        g.access_count += 1;
        sys.apply_change(Change::Modify(g));
    }
    assert!(sys.version_space_per_group() > 0.0, "versions occupy space");
    let stats = sys.stats();
    assert!(stats.version_bytes > 0);
}

#[test]
fn insert_change_places_semantically() {
    let (mut sys, pop) = system(1000, 10, 15);
    let mut newf = pop.files[0].clone();
    newf.file_id = 1_000_000;
    newf.name = "fresh_file".into();
    sys.apply_change(Change::Insert(newf.clone()));
    let total: usize = sys.units().iter().map(|u| u.len()).sum();
    assert_eq!(total, 1001);
    // Point query finds it via version recovery even though the tree's
    // Bloom replicas predate it.
    let out = sys.query().point("fresh_file");
    assert!(out.file_ids.contains(&1_000_000));
}

#[test]
fn delete_change_removes_file() {
    let (mut sys, pop) = system(1000, 10, 16);
    let victim = pop.files[123].file_id;
    sys.apply_change(Change::Delete(victim));
    assert!(sys.current_files().iter().all(|f| f.file_id != victim));
    // Range covering everything must not return the deleted id.
    let files = sys.current_files();
    let pop2 = MetadataPopulation {
        files,
        config: pop.config.clone(),
    };
    let (lo, hi) = pop2.attr_bounds();
    let out = sys.query().range(&lo, &hi, &QueryOptions::offline());
    assert!(!out.file_ids.contains(&victim));
}

#[test]
fn reconfigure_clears_versions_and_restores_recall() {
    let (mut sys, pop) = system(1500, 15, 17);
    for f in pop.files.iter().step_by(7) {
        let mut g = f.clone();
        g.size *= 3;
        sys.apply_change(Change::Modify(g));
    }
    sys.reconfigure();
    assert_eq!(sys.stats().version_bytes, 0, "reconfigure clears chains");
    sys.tree().check_invariants().unwrap();
    // Fresh index answers exactly again — even with versioning off.
    sys.set_versioning(false);
    let files = sys.current_files();
    let scratch = MetadataPopulation {
        files,
        config: pop.config.clone(),
    };
    let w = QueryWorkload::generate(
        &scratch,
        &QueryGenConfig {
            n_range: 20,
            n_topk: 0,
            n_point: 0,
            seed: 5,
            ..Default::default()
        },
    );
    for q in &w.ranges {
        let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
        assert!(recall(&q.ideal, &out.file_ids) > 0.999);
    }
}

#[test]
fn add_unit_integrates_into_tree() {
    let (mut sys, _) = system(1000, 10, 18);
    let extra = population(80, 999);
    let mut files = extra.files;
    for (i, f) in files.iter_mut().enumerate() {
        f.file_id = 2_000_000 + i as u64;
    }
    let id = sys.add_unit(files);
    assert_eq!(id, 10);
    sys.tree().check_invariants().unwrap();
    assert_eq!(sys.units().len(), 11);
    let name = sys.units()[10].files()[0].name.clone();
    let expect = sys.units()[10].files()[0].file_id;
    let out = sys.query().point(&name);
    assert!(out.file_ids.contains(&expect));
}

#[test]
fn online_vs_offline_cost_shape() {
    let (sys, pop) = system(2000, 24, 19);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 25,
            n_topk: 0,
            n_point: 0,
            distribution: QueryDistribution::Zipf,
            seed: 6,
            ..Default::default()
        },
    );
    let (mut on_msgs, mut off_msgs, mut on_lat, mut off_lat) = (0u64, 0u64, 0u64, 0u64);
    for q in &w.ranges {
        let on = sys.query().range(&q.lo, &q.hi, &QueryOptions::online());
        let off = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
        on_msgs += on.cost.messages;
        off_msgs += off.cost.messages;
        on_lat += on.cost.latency_ns;
        off_lat += off.cost.latency_ns;
        // Same answers regardless of routing mode.
        assert_eq!(on.file_ids, off.file_ids);
    }
    assert!(
        on_msgs > off_msgs,
        "Fig. 13(b): online messages {on_msgs} > offline {off_msgs}"
    );
    assert!(on_lat >= off_lat, "Fig. 13(a): online latency >= offline");
}

#[test]
fn most_queries_are_zero_hop() {
    // The headline grouping-efficiency claim (Fig. 8): most complex
    // queries are served inside a single semantic group.
    let (sys, pop) = system(3000, 30, 20);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 50,
            n_topk: 50,
            n_point: 0,
            distribution: QueryDistribution::Zipf,
            seed: 7,
            ..Default::default()
        },
    );
    let mut zero = 0;
    let mut total = 0;
    for q in &w.ranges {
        let out = sys.query().range(&q.lo, &q.hi, &QueryOptions::offline());
        if out.cost.group_hops == 0 {
            zero += 1;
        }
        total += 1;
    }
    for q in &w.topks {
        let out = sys
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k));
        if out.cost.group_hops == 0 {
            zero += 1;
        }
        total += 1;
    }
    let frac = zero as f64 / total as f64;
    assert!(
        frac > 0.5,
        "majority of Zipf queries should be 0-hop, got {frac} ({zero}/{total})"
    );
}

#[test]
fn lazy_refresh_fires_after_threshold_and_counts_maintenance() {
    let (mut sys, pop) = system(1000, 10, 21);
    assert_eq!(sys.maintenance_messages, 0);
    // Push well past the 5% lazy-update threshold with modifications.
    for f in pop.files.iter().take(200) {
        let mut g = f.clone();
        g.access_count += 1;
        sys.apply_change(Change::Modify(g));
    }
    assert!(
        sys.maintenance_messages > 0,
        "20% churn must trigger lazy replica multicasts"
    );
    // Lazy refresh folds version chains back into the index, so the
    // retained version space stays bounded.
    let retained = sys.stats().version_bytes;
    let frozen = SmartStoreConfig {
        lazy_update_threshold: f64::INFINITY,
        ..SmartStoreConfig::default()
    };
    let mut sys_frozen = SmartStoreSystem::build(pop.files.clone(), 10, frozen, 21);
    for f in pop.files.iter().take(200) {
        let mut g = f.clone();
        g.access_count += 1;
        sys_frozen.apply_change(Change::Modify(g));
    }
    assert!(
        retained < sys_frozen.stats().version_bytes,
        "lazy refresh must flush version chains ({retained} vs {})",
        sys_frozen.stats().version_bytes
    );
}

#[test]
fn random_home_is_in_range_and_seed_deterministic() {
    let (mut a, _) = system(500, 5, 30);
    let (mut b, _) = system(500, 5, 30);
    let ha: Vec<usize> = (0..20).map(|_| a.random_home()).collect();
    let hb: Vec<usize> = (0..20).map(|_| b.random_home()).collect();
    assert_eq!(ha, hb, "same seed, same home sequence");
    assert!(ha.iter().all(|&h| h < 5));
}

#[test]
fn stats_are_internally_consistent() {
    let (sys, _) = system(1500, 15, 31);
    let s = sys.stats();
    assert_eq!(s.n_units, 15);
    assert!(s.n_groups >= 1 && s.n_groups <= 15);
    assert!(s.tree_height >= 2);
    assert!(s.tree_index_bytes > 0);
    assert!(s.per_unit_index_bytes >= sys.cfg.bloom_bits / 8);
}

#[test]
fn two_threads_query_one_engine_concurrently() {
    // The acceptance shape of the &self read path: many readers share
    // one system (queries never mutate), and every concurrent answer is
    // identical to the sequential one.
    let (mut sys, pop) = system(2000, 20, 40);
    // Churn first so version-chain recovery is part of what the
    // concurrent readers exercise.
    for f in pop.files.iter().step_by(17) {
        let mut g = f.clone();
        g.size = g.size.saturating_mul(7);
        sys.apply_change(Change::Modify(g));
    }
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 10,
            n_topk: 10,
            n_point: 10,
            distribution: QueryDistribution::Zipf,
            seed: 8,
            ..Default::default()
        },
    );
    let engine = sys.query();
    let expected_ranges: Vec<_> = w
        .ranges
        .iter()
        .map(|q| engine.range(&q.lo, &q.hi, &QueryOptions::offline()))
        .collect();
    let expected_topks: Vec<_> = w
        .topks
        .iter()
        .map(|q| engine.topk(&q.point, &QueryOptions::online().with_k(q.k)))
        .collect();
    let expected_points: Vec<_> = w.points.iter().map(|q| engine.point(&q.name)).collect();

    std::thread::scope(|s| {
        let ranges = s.spawn(|| {
            w.ranges
                .iter()
                .map(|q| engine.range(&q.lo, &q.hi, &QueryOptions::offline()))
                .collect::<Vec<_>>()
        });
        let topks = s.spawn(|| {
            w.topks
                .iter()
                .map(|q| engine.topk(&q.point, &QueryOptions::online().with_k(q.k)))
                .collect::<Vec<_>>()
        });
        let points = s.spawn(|| {
            w.points
                .iter()
                .map(|q| engine.point(&q.name))
                .collect::<Vec<_>>()
        });
        assert_eq!(ranges.join().unwrap(), expected_ranges);
        assert_eq!(topks.join().unwrap(), expected_topks);
        assert_eq!(points.join().unwrap(), expected_points);
    });
}

#[test]
fn dirty_tracking_follows_the_change_stream() {
    use smartstore::versioning::Change;
    let (mut sys, pop) = system(1000, 10, 41);
    // A freshly built system is fully dirty: no snapshot covers it yet.
    assert_eq!(sys.dirty_units(), (0..10).collect::<Vec<_>>());
    sys.clear_dirty();
    assert_eq!(sys.dirty_count(), 0);

    // Queries never dirty anything.
    let q = pop.files[77].attr_vector();
    let lo: Vec<f64> = q.iter().map(|x| x - 0.3).collect();
    let hi: Vec<f64> = q.iter().map(|x| x + 0.3).collect();
    sys.query().range(&lo, &hi, &QueryOptions::offline());
    sys.query().topk(&q, &QueryOptions::online().with_k(5));
    sys.query().point(&pop.files[77].name);
    assert_eq!(sys.dirty_count(), 0);

    // A delete dirties exactly the owning unit.
    let victim = sys.current_files()[3].clone();
    sys.apply_change(Change::Delete(victim.file_id));
    assert_eq!(sys.dirty_count(), 1);

    // A no-op change dirties nothing further.
    sys.apply_change(Change::Delete(u64::MAX));
    assert_eq!(sys.dirty_count(), 1);

    // The delta cut carries exactly the dirty units, ascending.
    let delta = sys.to_delta_parts();
    assert_eq!(delta.n_units_total, 10);
    assert_eq!(
        delta.units.iter().map(|u| u.id).collect::<Vec<_>>(),
        sys.dirty_units()
    );

    // Reconfiguration rewrites every unit's summaries.
    sys.clear_dirty();
    sys.reconfigure();
    assert_eq!(sys.dirty_count(), 10);
}

#[test]
fn bulk_removal_matches_change_stream_answers() {
    // remove_files_bulk refreshes summaries eagerly while the change
    // stream leaves them stale, but storage units are the source of
    // truth either way: every query answer must agree.
    let (mut bulk, pop) = system(1500, 15, 31);
    let mut seq = SmartStoreSystem::from_parts(bulk.to_parts());
    let ids: Vec<u64> = pop
        .files
        .iter()
        .step_by(7)
        .map(|f| f.file_id)
        .chain([u64::MAX])
        .collect();
    let removed = bulk.remove_files_bulk(&ids);
    assert_eq!(removed, ids.len() - 1, "unknown ids are ignored");
    for id in &ids {
        seq.apply_change(Change::Delete(*id));
    }
    for u in bulk.units() {
        u.check_columnar_coherence().unwrap();
    }
    assert_eq!(
        bulk.current_files().len(),
        pop.files.len() - removed,
        "ownership and stores agree on the survivor count"
    );

    let opts = QueryOptions::offline().with_k(8);
    for f in pop.files.iter().step_by(97) {
        let v = f.attr_vector();
        let lo: Vec<f64> = v.iter().map(|x| x - 0.5).collect();
        let hi: Vec<f64> = v.iter().map(|x| x + 0.5).collect();
        assert_eq!(
            bulk.query().range(&lo, &hi, &opts).file_ids,
            seq.query().range(&lo, &hi, &opts).file_ids
        );
        assert_eq!(
            bulk.query().topk(&v, &opts).file_ids,
            seq.query().topk(&v, &opts).file_ids
        );
        assert_eq!(
            bulk.query().point(&f.name).file_ids,
            seq.query().point(&f.name).file_ids
        );
    }
}
