//! Property tests for the SmartStore core: grouping partitions,
//! placement balance, semantic R-tree invariants under random
//! reconfiguration, versioning replay equivalence.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use proptest::prelude::*;
use smartstore::config::SmartStoreConfig;
use smartstore::grouping::{group_level, partition_tiled, wcss};
use smartstore::tree::SemanticRTree;
use smartstore::unit::StorageUnit;
use smartstore::versioning::{Change, VersionStore};
use smartstore_trace::{FileMetadata, GeneratorConfig, MetadataPopulation};

fn meta(id: u64, size: u64, t: f64) -> FileMetadata {
    FileMetadata {
        file_id: id,
        name: format!("f{id}"),
        dir: "/d".into(),
        owner: 0,
        size,
        ctime: t,
        mtime: t,
        atime: t,
        read_bytes: size,
        write_bytes: 0,
        access_count: 1,
        proc_id: (id % 16) as u32,
        truth_cluster: None,
    }
}

fn vec_strategy(n: std::ops::Range<usize>) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec((-50i32..50).prop_map(|v| v as f64 / 5.0), 4),
        n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn group_level_is_partition(vectors in vec_strategy(1..40), eps in 0.0f64..1.0) {
        let g = group_level(&vectors, eps, 2, 8);
        let mut seen = vec![false; vectors.len()];
        for grp in &g.groups {
            prop_assert!(!grp.is_empty());
            prop_assert!(grp.len() <= 8, "cap respected");
            for &m in grp {
                prop_assert!(!seen[m], "item {m} assigned twice");
                seen[m] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "every item grouped");
        prop_assert_eq!(g.centroids.len(), g.groups.len());
    }

    #[test]
    fn wcss_nonnegative_and_zero_for_singletons(vectors in vec_strategy(1..25)) {
        let singles: Vec<Vec<usize>> = (0..vectors.len()).map(|i| vec![i]).collect();
        prop_assert!(wcss(&vectors, &singles).abs() < 1e-9);
        let all: Vec<usize> = (0..vectors.len()).collect();
        prop_assert!(wcss(&vectors, &[all]) >= 0.0);
    }

    #[test]
    fn partition_tiled_covers_and_bounds(
        vectors in vec_strategy(8..120),
        n_parts in 2usize..8,
    ) {
        prop_assume!(vectors.len() >= n_parts);
        let assignment = partition_tiled(&vectors, n_parts, 2);
        prop_assert_eq!(assignment.len(), vectors.len());
        let mut counts = vec![0usize; n_parts];
        for &a in &assignment {
            prop_assert!(a < n_parts);
            counts[a] += 1;
        }
        prop_assert!(counts.iter().all(|&c| c > 0), "no part may be empty: {:?}", counts);
    }

    #[test]
    fn semantic_tree_survives_random_unit_churn(
        sizes in prop::collection::vec(5usize..25, 4..12),
        removals in prop::collection::vec(any::<prop::sample::Index>(), 0..6),
    ) {
        // Build units with deterministic metadata derived from sizes.
        let cfg = SmartStoreConfig::default();
        let mut id = 0u64;
        let units: Vec<StorageUnit> = sizes.iter().enumerate().map(|(u, &n)| {
            let files: Vec<FileMetadata> = (0..n).map(|_| {
                id += 1;
                meta(id, 1000 + id * 7 % 5000, (u as f64) * 1000.0 + id as f64)
            }).collect();
            // Units must share the tree's Bloom geometry (union filters).
            StorageUnit::new(u, cfg.bloom_bits, cfg.bloom_hashes, files)
        }).collect();
        let mut tree = SemanticRTree::build(&units, &cfg);
        tree.check_invariants().unwrap();

        // Random removals (by index into the unit list).
        let mut live: Vec<usize> = units.iter().map(|u| u.id).collect();
        for idx in removals {
            if live.len() <= 1 { break; }
            let victim = live.remove(idx.index(live.len()));
            prop_assert!(tree.remove_unit(victim));
            tree.check_invariants().unwrap();
        }
        // Survivors all reachable.
        for &u in &live {
            prop_assert!(tree.leaf_of_unit(u).is_some(), "unit {u} lost");
        }
        prop_assert_eq!(tree.node(tree.root()).leaf_count, live.len());

        // Re-insert a fresh unit; invariants must still hold.
        let extra_files: Vec<FileMetadata> =
            (0..8).map(|i| meta(90_000 + i, 2048, 123.0 + i as f64)).collect();
        let extra = StorageUnit::new(777, cfg.bloom_bits, cfg.bloom_hashes, extra_files);
        tree.insert_unit(&extra);
        tree.check_invariants().unwrap();
        prop_assert!(tree.leaf_of_unit(777).is_some());
    }

    #[test]
    fn version_replay_equals_eager_application(
        ops in prop::collection::vec((0u64..20, 0u64..3, 1u64..1000), 0..60),
        ratio in 1u32..10,
    ) {
        // Model: eager application to a plain vec.
        let mut eager: Vec<FileMetadata> = (0..5).map(|i| meta(i, 100, i as f64)).collect();
        let mut vs = VersionStore::new(ratio);
        let mut base = eager.clone();
        for (id, kind, size) in ops {
            // Inserting an id that already exists is not a well-formed
            // change stream (a file system never re-creates a live
            // inode); normalize it to Modify so both application orders
            // are comparing the same stream.
            let exists = eager.iter().any(|x| x.file_id == id);
            let change = match kind {
                0 if !exists => Change::Insert(meta(id, size, size as f64)),
                1 => Change::Delete(id),
                _ => Change::Modify(meta(id, size, size as f64)),
            };
            // Eager model semantics mirror VersionStore::flush_into.
            match &change {
                Change::Insert(f) => {
                    if !eager.iter().any(|x| x.file_id == f.file_id) {
                        eager.push(f.clone());
                    }
                }
                Change::Delete(id) => eager.retain(|x| x.file_id != *id),
                Change::Modify(f) => {
                    if let Some(slot) = eager.iter_mut().find(|x| x.file_id == f.file_id) {
                        *slot = f.clone();
                    } else {
                        eager.push(f.clone());
                    }
                }
            }
            vs.record(change);
        }
        vs.flush_into(&mut base);
        let key = |v: &Vec<FileMetadata>| {
            let mut ids: Vec<(u64, u64)> = v.iter().map(|f| (f.file_id, f.size)).collect();
            ids.sort_unstable();
            ids
        };
        // Deferred (versioned) application must agree with eager
        // application up to insert-vs-modify shadowing: the version
        // chain collapses multiple changes per file into the newest one,
        // which is exactly the eager end state per file id.
        prop_assert_eq!(key(&base), key(&eager));
    }
}

#[test]
fn placement_preserves_planted_clusters_reasonably() {
    // Deterministic sanity floor: a clustered population partitioned by
    // the default pipeline keeps each cluster inside a small number of
    // units (the structural property behind Fig. 8).
    let pop = MetadataPopulation::generate(GeneratorConfig {
        n_files: 3000,
        n_clusters: 30,
        clustered_fraction: 0.95,
        seed: 404,
        ..GeneratorConfig::default()
    });
    let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
    let assignment = partition_tiled(&vectors, 30, 3);
    let mut spread: std::collections::HashMap<u32, std::collections::HashSet<usize>> =
        Default::default();
    for (f, &a) in pop.files.iter().zip(&assignment) {
        if let Some(c) = f.truth_cluster {
            spread.entry(c).or_default().insert(a);
        }
    }
    let mut spans: Vec<usize> = spread.values().map(|s| s.len()).collect();
    spans.sort_unstable();
    let median = spans[spans.len() / 2];
    assert!(
        median <= 6,
        "median cluster spread {median} units is too scattered for semantic placement"
    );
}
