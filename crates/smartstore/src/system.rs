//! The assembled SmartStore system (§5's unit of evaluation).
//!
//! Gluing it together: a population of file metadata is partitioned into
//! `N` storage units by balanced semantic clustering; the semantic
//! R-tree aggregates units into groups; index units are mapped onto
//! storage units; queries route through the tree (on-line or off-line)
//! and are evaluated by the target units; metadata changes flow through
//! version chains; lazy updates re-synchronize stale index replicas.
//!
//! Every query returns a [`QueryOutcome`] carrying both the answer and
//! its simulated cost, which the benchmark harness aggregates into the
//! paper's tables and figures.

use crate::config::SmartStoreConfig;
use crate::grouping::partition_tiled_flat;
use crate::mapping::{map_index_units, IndexMapping};
use crate::routing::{complex_query_cost, point_query_cost, QueryCost, RouteMode};
use crate::tree::{NodeId, SemanticRTree};
use crate::unit::{LocalWork, StorageUnit};
use crate::versioning::{Change, VersionStore};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartstore_simnet::CostModel;
use smartstore_trace::{FileMetadata, ATTR_DIMS};
use std::collections::HashMap;

/// The answer and cost of one query.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueryOutcome {
    /// Matching file ids (for point queries, at most one per hit unit).
    pub file_ids: Vec<u64>,
    /// Simulated cost.
    pub cost: QueryCost,
}

/// System-level structure statistics (Fig. 7 inputs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SystemStats {
    /// Number of storage units.
    pub n_units: usize,
    /// First-level semantic groups.
    pub n_groups: usize,
    /// Semantic R-tree height.
    pub tree_height: usize,
    /// Index bytes of the distributed semantic R-tree.
    pub tree_index_bytes: usize,
    /// Per-unit local index bytes (Bloom + summaries), averaged.
    pub per_unit_index_bytes: usize,
    /// Version-chain bytes across all groups.
    pub version_bytes: usize,
}

/// A sink for the durable change log: every mutation routed through
/// [`SmartStoreSystem::apply_change_journaled`] is recorded here
/// *before* the in-memory state mutates (write-ahead ordering). The
/// `smartstore-persist` crate provides the durable implementation; the
/// trait lives in the core so the core does not depend on the storage
/// backend.
pub trait Journal {
    /// Records one change, tagged with the first-level group it lands
    /// in. Implementations buffer durability errors and surface them on
    /// their own sync/flush API — this hook itself is infallible so the
    /// in-memory system never stalls on I/O error handling mid-update.
    fn record(&mut self, group: NodeId, change: &Change);
}

/// Per-unit dirty bitmap: which storage units have mutated since the
/// last [`SmartStoreSystem::clear_dirty`]. One bit per unit id, packed
/// into `u64` words, so tracking a million units costs 128 KiB and
/// marking is a single OR.
///
/// This is the bookkeeping behind *differential snapshots*
/// (`smartstore-persist`): a compaction that knows exactly which units
/// changed can re-encode only those, making its cost proportional to
/// the churn footprint instead of the corpus size.
#[derive(Clone, Debug, Default)]
pub struct DirtyUnits {
    words: Vec<u64>,
    count: usize,
}

impl DirtyUnits {
    /// An empty (all-clean) bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks one unit dirty.
    pub fn mark(&mut self, unit: usize) {
        let word = unit / 64;
        if word >= self.words.len() {
            self.words.resize(word + 1, 0);
        }
        let bit = 1u64 << (unit % 64);
        if self.words[word] & bit == 0 {
            self.words[word] |= bit;
            self.count += 1;
        }
    }

    /// Marks units `0..n` dirty (full-image invalidation).
    pub fn mark_all(&mut self, n: usize) {
        for u in 0..n {
            self.mark(u);
        }
    }

    /// Whether `unit` is marked.
    pub fn contains(&self, unit: usize) -> bool {
        self.words
            .get(unit / 64)
            .is_some_and(|w| w & (1u64 << (unit % 64)) != 0)
    }

    /// Number of dirty units.
    pub fn count(&self) -> usize {
        self.count
    }

    /// True when nothing is dirty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The dirty unit ids, ascending.
    pub fn to_vec(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.count);
        for (w, &word) in self.words.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(w * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Clears every mark.
    pub fn clear(&mut self) {
        self.words.clear();
        self.count = 0;
    }
}

/// The complete mutable state of a [`SmartStoreSystem`], exported for
/// serialization. The `owner` map is intentionally absent: it is always
/// exactly "file → unit that stores it" and is rebuilt from the units.
#[derive(Clone, Debug)]
pub struct SystemParts {
    /// Configuration in force.
    pub cfg: SmartStoreConfig,
    /// Storage units with their (possibly stale) summaries.
    pub units: Vec<StorageUnit>,
    /// Semantic R-tree structural state.
    pub tree: crate::tree::TreeParts,
    /// Index-unit → storage-unit mapping.
    pub mapping: IndexMapping,
    /// Per-group version chains, sorted by group id.
    pub versions: Vec<(NodeId, VersionStore)>,
    /// Per-group pending-change counters, sorted by group id.
    pub pending: Vec<(NodeId, usize)>,
    /// Whether versioning is enabled.
    pub versioning_enabled: bool,
    /// Accumulated replica-maintenance message count.
    pub maintenance_messages: u64,
    /// Seed for re-deriving the post-restore RNG stream (entry-point
    /// selection and remapping only — never query answers).
    pub reseed: u64,
}

/// The copy-on-write cut a *differential* snapshot encodes: only the
/// storage units dirtied since the previous snapshot generation, plus
/// the (small) index-side sections in full — the semantic R-tree,
/// index mapping, version chains and pending counters all shift with
/// every change, but together they are dwarfed by the unit records
/// that dominate snapshot bytes.
///
/// Capturing one is O(churn footprint + index), never O(corpus):
/// see [`SmartStoreSystem::to_delta_parts`].
#[derive(Clone, Debug)]
pub struct DeltaParts {
    /// Configuration in force.
    pub cfg: SmartStoreConfig,
    /// Clones of the dirty units only, ascending unit id.
    pub units: Vec<StorageUnit>,
    /// Total unit count of the system at the cut (folding sanity).
    pub n_units_total: usize,
    /// Semantic R-tree structural state (full).
    pub tree: crate::tree::TreeParts,
    /// Index-unit → storage-unit mapping (full).
    pub mapping: IndexMapping,
    /// Per-group version chains, sorted by group id (full).
    pub versions: Vec<(NodeId, VersionStore)>,
    /// Per-group pending-change counters, sorted by group id (full).
    pub pending: Vec<(NodeId, usize)>,
    /// Whether versioning is enabled.
    pub versioning_enabled: bool,
    /// Accumulated replica-maintenance message count.
    pub maintenance_messages: u64,
    /// Seed for re-deriving the post-restore RNG stream.
    pub reseed: u64,
}

/// A complete SmartStore deployment over simulated storage units.
#[derive(Clone, Debug)]
pub struct SmartStoreSystem {
    /// Configuration in force.
    pub cfg: SmartStoreConfig,
    /// Cost model for latency accounting.
    pub cost: CostModel,
    units: Vec<StorageUnit>,
    tree: SemanticRTree,
    mapping: IndexMapping,
    /// file id → owning unit.
    owner: HashMap<u64, usize>,
    /// Per-group version chains (keyed by first-level index node id).
    versions: HashMap<NodeId, VersionStore>,
    /// Changes since the last lazy replica update, per group.
    pending: HashMap<NodeId, usize>,
    versioning_enabled: bool,
    /// Messages spent on replica maintenance (lazy updates, version
    /// multicasts) — background traffic, reported separately.
    pub maintenance_messages: u64,
    /// Units mutated since the last [`Self::clear_dirty`] — the churn
    /// footprint a differential snapshot re-encodes.
    dirty: DirtyUnits,
    rng: StdRng,
}

impl SmartStoreSystem {
    /// Builds a system of `n_units` storage units from a set of file
    /// metadata, using balanced semantic partitioning for placement.
    pub fn build(
        files: Vec<FileMetadata>,
        n_units: usize,
        cfg: SmartStoreConfig,
        seed: u64,
    ) -> Self {
        assert!(n_units > 0, "build: need at least one unit");
        assert!(
            files.len() >= n_units,
            "build: fewer files ({}) than units ({n_units})",
            files.len()
        );
        // Placement clusters on the grouping predicate (the attribute
        // subset of Statement 1), not the full D-dim space — the noisy
        // dimensions would otherwise swamp the semantic correlation.
        // The projection is built as one flat n×d table (no per-record
        // Vec), the shape the LSI fit consumes directly.
        let table = smartstore_trace::attr_subset_table(&files, &cfg.grouping_dims);
        let assignment =
            partition_tiled_flat(&table, cfg.grouping_dims.len(), n_units, cfg.lsi_rank);
        Self::build_with_assignment(files, &assignment, n_units, cfg, seed)
    }

    /// Builds with an explicit file→unit placement (used by the grouping
    /// ablation to compare LSI placement against K-means-on-raw and
    /// random placement).
    pub fn build_with_assignment(
        files: Vec<FileMetadata>,
        assignment: &[usize],
        n_units: usize,
        cfg: SmartStoreConfig,
        seed: u64,
    ) -> Self {
        assert_eq!(files.len(), assignment.len(), "placement length mismatch");
        let mut buckets: Vec<Vec<FileMetadata>> = vec![Vec::new(); n_units];
        let mut owner = HashMap::with_capacity(files.len());
        for (f, &a) in files.into_iter().zip(assignment.iter()) {
            owner.insert(f.file_id, a);
            buckets[a].push(f);
        }
        let units: Vec<StorageUnit> = buckets
            .into_iter()
            .enumerate()
            .map(|(i, fs)| {
                StorageUnit::with_family(i, cfg.bloom_bits, cfg.bloom_hashes, cfg.bloom_family, fs)
            })
            .collect();
        let tree = SemanticRTree::build(&units, &cfg);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5afe);
        let mapping = map_index_units(&tree, &mut rng);
        let mut versions = HashMap::new();
        for g in tree.first_level_index_units() {
            versions.insert(g, VersionStore::new(cfg.version_ratio));
        }
        // A freshly built system has no snapshot generation behind it:
        // everything is dirty until a full image is written.
        let mut dirty = DirtyUnits::new();
        dirty.mark_all(units.len());
        Self {
            cfg,
            cost: CostModel::default(),
            units,
            tree,
            mapping,
            owner,
            versions,
            pending: HashMap::new(),
            versioning_enabled: true,
            maintenance_messages: 0,
            dirty,
            rng,
        }
    }

    /// Enables or disables versioning (Tables 5–6 compare both).
    pub fn set_versioning(&mut self, enabled: bool) {
        self.versioning_enabled = enabled;
    }

    /// The storage units.
    pub fn units(&self) -> &[StorageUnit] {
        &self.units
    }

    /// The semantic R-tree.
    pub fn tree(&self) -> &SemanticRTree {
        &self.tree
    }

    /// The index-unit mapping.
    pub fn mapping(&self) -> &IndexMapping {
        &self.mapping
    }

    /// Exports the system's complete mutable state for serialization.
    pub fn to_parts(&self) -> SystemParts {
        let mut versions: Vec<(NodeId, VersionStore)> = self
            .versions // lint:allow(D002) -- collected then sorted below; map order never escapes
            .iter()
            .map(|(&g, vs)| (g, vs.clone()))
            .collect();
        versions.sort_by_key(|&(g, _)| g);
        let mut pending: Vec<(NodeId, usize)> =
            // lint:allow(D002) -- collected then sorted below
            self.pending.iter().map(|(&g, &n)| (g, n)).collect();
        pending.sort_unstable();
        SystemParts {
            cfg: self.cfg.clone(),
            units: self.units.clone(),
            tree: self.tree.to_parts(),
            mapping: self.mapping.clone(),
            versions,
            pending,
            versioning_enabled: self.versioning_enabled,
            maintenance_messages: self.maintenance_messages,
            reseed: 0x5afe_5eed,
        }
    }

    /// Reassembles a system from exported parts — the inverse of
    /// [`Self::to_parts`]. Query answers of the reassembled system are
    /// identical to the exported one's (units, tree summaries, Bloom
    /// filters and version chains come back byte-for-byte); only the
    /// RNG stream (query entry points, future remappings) restarts.
    pub fn from_parts(parts: SystemParts) -> Self {
        let mut owner = HashMap::new();
        for u in &parts.units {
            for f in u.files() {
                owner.insert(f.file_id, u.id);
            }
        }
        let tree = SemanticRTree::from_parts(parts.tree, &parts.cfg);
        Self {
            cfg: parts.cfg,
            cost: CostModel::default(),
            units: parts.units,
            tree,
            mapping: parts.mapping,
            owner,
            versions: parts.versions.into_iter().collect(), // lint:allow(D002) -- parts.versions/pending are Vecs, not the maps of the same name
            pending: parts.pending.into_iter().collect(),
            versioning_enabled: parts.versioning_enabled,
            maintenance_messages: parts.maintenance_messages,
            // Parts come from a persisted image, so disk and memory
            // agree: nothing is dirty until a change lands (WAL replay
            // re-marks exactly the replayed footprint via
            // `apply_change`).
            dirty: DirtyUnits::new(),
            rng: StdRng::seed_from_u64(parts.reseed),
        }
    }

    // ------------------------------------------------------------------
    // Dirty tracking (differential snapshots)
    // ------------------------------------------------------------------

    /// The units mutated since the last [`Self::clear_dirty`],
    /// ascending — the churn footprint a differential snapshot must
    /// re-encode.
    pub fn dirty_units(&self) -> Vec<usize> {
        self.dirty.to_vec()
    }

    /// Number of dirty units.
    pub fn dirty_count(&self) -> usize {
        self.dirty.count()
    }

    /// Resets dirty tracking. Call *only* at the instant a snapshot
    /// generation (full or delta) captures the current state — clearing
    /// at any other time silently drops units from the next delta.
    pub fn clear_dirty(&mut self) {
        self.dirty.clear();
    }

    /// Exports the differential cut for the current dirty set: clones
    /// of the dirty units plus the (small) index-side sections in full.
    /// O(churn footprint + index), never O(corpus). Does **not** clear
    /// the dirty set — the caller clears it once the cut is safely on
    /// its way to disk (see `smartstore-persist`).
    pub fn to_delta_parts(&self) -> DeltaParts {
        let mut versions: Vec<(NodeId, VersionStore)> = self
            .versions // lint:allow(D002) -- collected then sorted below; map order never escapes
            .iter()
            .map(|(&g, vs)| (g, vs.clone()))
            .collect();
        versions.sort_by_key(|&(g, _)| g);
        let mut pending: Vec<(NodeId, usize)> =
            // lint:allow(D002) -- collected then sorted below
            self.pending.iter().map(|(&g, &n)| (g, n)).collect();
        pending.sort_unstable();
        DeltaParts {
            cfg: self.cfg.clone(),
            units: self
                .dirty
                .to_vec()
                .into_iter()
                .map(|u| self.units[u].clone())
                .collect(),
            n_units_total: self.units.len(),
            tree: self.tree.to_parts(),
            mapping: self.mapping.clone(),
            versions,
            pending,
            versioning_enabled: self.versioning_enabled,
            maintenance_messages: self.maintenance_messages,
            reseed: 0x5afe_5eed,
        }
    }

    /// Every file currently stored, in unit order (ground truth for
    /// recall measurements).
    pub fn current_files(&self) -> Vec<FileMetadata> {
        self.units
            .iter()
            .flat_map(|u| u.files().iter().cloned())
            .collect()
    }

    /// Structure statistics.
    pub fn stats(&self) -> SystemStats {
        let per_unit: usize = self
            .units
            .iter()
            .map(|u| u.index_size_bytes())
            .sum::<usize>()
            / self.units.len();
        SystemStats {
            n_units: self.units.len(),
            n_groups: self.tree.first_level_index_units().len(),
            tree_height: self.tree.height(),
            tree_index_bytes: self.tree.index_size_bytes(),
            per_unit_index_bytes: per_unit,
            // lint:allow(D002) -- additive sum; order-insensitive
            version_bytes: self.versions.values().map(|v| v.size_bytes()).sum(),
        }
    }

    /// Version-chain space per group (Fig. 14(a)); empty when versioning
    /// is off.
    pub fn version_space_per_group(&self) -> f64 {
        if self.versions.is_empty() {
            return 0.0;
        }
        self.versions // lint:allow(D002) -- additive sum; order-insensitive
            .values()
            .map(|v| v.size_bytes())
            .sum::<usize>() as f64
            / self.versions.len() as f64
    }

    // ------------------------------------------------------------------
    // Queries
    //
    // Evaluation is pure: storage units are the source of truth, index
    // staleness arises only through the write path, and the lazy
    // replica refresh (§3.4) is an explicit write-side step inside
    // `apply_change`. Everything below therefore takes `&self`, so any
    // number of readers can evaluate concurrently; the public surface
    // is the [`crate::query::QueryEngine`] view.
    // ------------------------------------------------------------------

    /// A shared read-only query view over this system (the `&self`
    /// read path; see [`crate::query`]).
    pub fn query(&self) -> crate::query::QueryEngine<'_> {
        crate::query::QueryEngine::new(self)
    }

    /// Range-query evaluation (see [`crate::query::QueryEngine::range`]).
    pub(crate) fn eval_range(&self, lo: &[f64], hi: &[f64], mode: RouteMode) -> QueryOutcome {
        assert_eq!(lo.len(), ATTR_DIMS, "range_query: lo dims");
        assert_eq!(hi.len(), ATTR_DIMS, "range_query: hi dims");
        let route = self.tree.route_range(lo, hi);
        let mut results = Vec::new();
        let mut work: Vec<(usize, LocalWork)> = Vec::new();
        let mut bearing_units = Vec::new();
        for &u in &route.target_units {
            let (ids, w) = self.units[u].range_query(lo, hi);
            if !ids.is_empty() {
                bearing_units.push(u);
            }
            results.extend(ids);
            work.push((u, w));
        }
        let n_groups = self.tree.first_level_index_units().len();
        let mut cost = complex_query_cost(
            mode,
            &self.tree,
            &self.mapping,
            &route,
            &work,
            n_groups,
            &self.cost,
        );
        // Fig. 8's routing distance counts the groups where results were
        // *obtained* — MBR pre-checks at index-unit hosts are not group
        // visits.
        cost.group_hops = self.hops_of_units(&bearing_units);
        if self.versioning_enabled {
            let scanned = self.apply_versions_to_range(lo, hi, &mut results);
            cost.latency_ns += self.version_scan_ns(scanned);
        }
        results.sort_unstable();
        results.dedup();
        QueryOutcome {
            file_ids: results,
            cost,
        }
    }

    /// Top-k evaluation (see [`crate::query::QueryEngine::topk`]).
    pub(crate) fn eval_topk(&self, point: &[f64], k: usize, mode: RouteMode) -> QueryOutcome {
        self.eval_topk_scored(point, k, mode).1
    }

    /// Top-k query with the paper's MaxD pruning (§3.3.2): units are
    /// probed in best-first MBR order; probing stops once the next
    /// unit's lower bound exceeds the current k-th best distance (MaxD).
    /// Returns the `(file_id, squared distance)` pairs alongside the
    /// outcome so distributed callers can merge shard answers exactly.
    pub(crate) fn eval_topk_scored(
        &self,
        point: &[f64],
        k: usize,
        mode: RouteMode,
    ) -> (Vec<(u64, f64)>, QueryOutcome) {
        assert_eq!(point.len(), ATTR_DIMS, "topk_query: point dims");
        let (order, nodes_visited) = self.tree.route_topk(point);
        // Cross-unit merge through the same bounded heap the units use:
        // O(log k) per candidate instead of re-sorting the merged list
        // after every unit, with the heap's k-th best doubling as the
        // MaxD bound. total_cmp ordering — identical order for the
        // non-negative squared distances that arise here, and no panic
        // path on a NaN.
        let mut top = crate::unit::TopK::new(k);
        let mut work: Vec<(usize, LocalWork)> = Vec::new();
        let mut visited_units = Vec::new();
        for &(u, lower_bound) in &order {
            if lower_bound > top.max_d() {
                break; // MaxD pruning: no better result can exist here.
            }
            let (unit_top, w) = self.units[u].topk_query(point, k);
            work.push((u, w));
            visited_units.push(u);
            for (id, d) in unit_top {
                top.push(id, d);
            }
        }
        let mut best = top.into_sorted();
        // Routing structure for cost purposes: the units actually probed.
        let route = crate::tree::Route {
            target_units: visited_units.clone(),
            nodes_visited,
            filters_probed: 0,
            group_hops: self.hops_of_units(&visited_units),
        };
        let n_groups = self.tree.first_level_index_units().len();
        let mut cost = complex_query_cost(
            mode,
            &self.tree,
            &self.mapping,
            &route,
            &work,
            n_groups,
            &self.cost,
        );
        if self.versioning_enabled {
            let scanned = self.apply_versions_to_topk(point, k, &mut best);
            cost.latency_ns += self.version_scan_ns(scanned);
        }
        // Fig. 8 semantics: hops over the units that contributed to the
        // final answer, not every unit the MaxD walk grazed.
        let contributing: Vec<usize> = visited_units
            .iter()
            .copied()
            .filter(|&u| {
                best.iter()
                    .any(|&(id, _)| self.owner.get(&id).copied() == Some(u))
            })
            .collect();
        cost.group_hops = self.hops_of_units(&contributing);
        let outcome = QueryOutcome {
            file_ids: best.iter().map(|&(id, _)| id).collect(),
            cost,
        };
        (best, outcome)
    }

    /// Point-query evaluation (see [`crate::query::QueryEngine::point`]).
    pub(crate) fn eval_point(&self, name: &str) -> QueryOutcome {
        let route = self.tree.route_point(name);
        let mut results = Vec::new();
        let mut work = Vec::new();
        for &u in &route.target_units {
            let (hit, w) = self.units[u].point_query(name);
            if let Some(f) = hit {
                results.push(f.file_id);
            }
            work.push((u, w));
        }
        let mut cost = point_query_cost(&route, &work, &self.cost);
        if self.versioning_enabled && results.is_empty() {
            // Staleness recovery: a file created after the last replica
            // refresh is found in the version chains.
            let mut scanned = 0;
            // lint:allow(D002) -- results are sorted and deduped below
            for vs in self.versions.values() {
                let (effective, s) = vs.effective_changes();
                scanned += s;
                for ch in effective {
                    match ch {
                        Change::Insert(f) | Change::Modify(f) if f.name == name => {
                            results.push(f.file_id);
                        }
                        _ => {}
                    }
                }
            }
            cost.latency_ns += self.version_scan_ns(scanned);
        }
        results.sort_unstable();
        results.dedup();
        QueryOutcome {
            file_ids: results,
            cost,
        }
    }

    /// Latency of rolling the version chains backwards: each change
    /// record costs a record probe and each version crossed costs a
    /// header probe — comprehensive versioning (ratio 1) therefore pays
    /// the most (Fig. 14(b)).
    fn version_scan_ns(&self, scanned: usize) -> u64 {
        // lint:allow(D002) -- additive sum; order-insensitive
        let version_headers: usize = self.versions.values().map(|v| v.version_count()).sum();
        self.cost.per_record_ns * scanned as u64 + self.cost.per_record_ns * version_headers as u64
    }

    fn hops_of_units(&self, units: &[usize]) -> usize {
        if units.len() <= 1 {
            return 0;
        }
        let mut groups: Vec<NodeId> = units
            .iter()
            .filter_map(|&u| self.tree.leaf_of_unit(u))
            .map(|l| self.tree.group_of_leaf(l))
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len().saturating_sub(1)
    }

    // ------------------------------------------------------------------
    // Change stream & consistency (§4.4)
    // ------------------------------------------------------------------

    /// The single placement rule: the storage unit a change targets.
    /// Inserts go to the least-loaded unit of the most correlated group
    /// (§3.2.1); deletes/modifies go to the owner. `None` when the
    /// change is a no-op (delete/modify of an unknown file).
    ///
    /// Both [`Self::group_of_change`] and [`Self::apply_change`] go
    /// through here, so the group a write-ahead journal tags a frame
    /// with can never diverge from where the change actually lands.
    fn unit_of_change(&self, change: &Change) -> Option<usize> {
        match change {
            Change::Insert(f) => {
                let g = self.tree.most_correlated_group(&f.attr_vector());
                let members = self.tree.descendant_units(g);
                members.into_iter().min_by_key(|&u| self.units[u].len())
            }
            Change::Delete(id) => self.owner.get(id).copied(),
            Change::Modify(f) => self.owner.get(&f.file_id).copied(),
        }
    }

    /// The first-level group above a storage unit.
    fn group_of_unit(&self, unit: usize) -> NodeId {
        self.tree
            .leaf_of_unit(unit)
            .map(|l| self.tree.group_of_leaf(l))
            .unwrap_or_else(|| self.tree.root())
    }

    /// The first-level group a change will land in, computed *without*
    /// mutating anything. `None` when the change is a no-op
    /// (delete/modify of an unknown file).
    pub fn group_of_change(&self, change: &Change) -> Option<NodeId> {
        Some(self.group_of_unit(self.unit_of_change(change)?))
    }

    /// Applies a change, recording it in `journal` *first* (write-ahead
    /// ordering: once the journal accepts the frame, a crash before the
    /// in-memory mutation is recovered by replay). Placement is computed
    /// once and shared between the journal tag and the application.
    /// Returns the group the change landed in, like
    /// [`Self::apply_change`].
    pub fn apply_change_journaled(
        &mut self,
        change: Change,
        journal: &mut dyn Journal,
    ) -> Option<NodeId> {
        self.try_apply_change_journaled::<core::convert::Infallible>(change, |group, ch| {
            journal.record(group, ch);
            Ok(())
        })
        .unwrap_or_else(|never| match never {})
    }

    /// Fallible variant of [`Self::apply_change_journaled`]: `journal`
    /// may refuse the frame, in which case the in-memory state is left
    /// *untouched* (write-ahead discipline — a change that never reached
    /// the log must not exist in memory either).
    pub fn try_apply_change_journaled<E>(
        &mut self,
        change: Change,
        mut journal: impl FnMut(NodeId, &Change) -> std::result::Result<(), E>,
    ) -> std::result::Result<Option<NodeId>, E> {
        match self.unit_of_change(&change) {
            Some(unit) => {
                let group = self.group_of_unit(unit);
                journal(group, &change)?;
                Ok(self.apply_change_at(change, unit))
            }
            None => {
                // No-op change: still journaled (replay applies it as
                // the same no-op) so live and recovered histories match.
                journal(self.tree.root(), &change)?;
                Ok(None)
            }
        }
    }

    /// Applies a metadata change to the system. Storage units mutate
    /// immediately (they are the source of truth); the *index* — tree
    /// summaries and replicated vectors — stays stale until a lazy
    /// update fires, and version chains record the change for query-time
    /// recovery when versioning is enabled.
    ///
    /// Returns the first-level group the change landed in (`None` for
    /// no-op deletes/modifies of unknown files).
    pub fn apply_change(&mut self, change: Change) -> Option<NodeId> {
        let unit = self.unit_of_change(&change)?;
        self.apply_change_at(change, unit)
    }

    /// Applies a change whose target `unit` has already been resolved by
    /// [`Self::unit_of_change`].
    fn apply_change_at(&mut self, change: Change, unit: usize) -> Option<NodeId> {
        self.dirty.mark(unit);
        match &change {
            Change::Insert(f) => {
                self.owner.insert(f.file_id, unit);
                self.units[unit].insert_file_raw(f.clone());
            }
            Change::Delete(id) => {
                self.owner.remove(id);
                self.units[unit].remove_file_raw(*id);
            }
            Change::Modify(f) => {
                self.units[unit].modify_file_raw(f.clone());
            }
        }
        let group = self.group_of_unit(unit);
        if self.versioning_enabled {
            self.versions
                .entry(group)
                .or_insert_with(|| VersionStore::new(self.cfg.version_ratio))
                .record(change);
        }
        // Lazy update accounting (§3.4): once a group accumulates more
        // than `lazy_update_threshold` × its file count of changes, its
        // units re-publish summaries and the index refreshes.
        let counter = self.pending.entry(group).or_insert(0);
        *counter += 1;
        let group_files: usize = self
            .tree
            .descendant_units(group)
            .iter()
            .map(|&u| self.units[u].len())
            .sum();
        if (*counter as f64) > self.cfg.lazy_update_threshold * group_files.max(1) as f64 {
            self.pending.insert(group, 0);
            self.lazy_refresh_group(group);
        }
        Some(group)
    }

    /// Re-synchronizes all leaf summaries of a group and multicasts the
    /// fresh replica (counted as maintenance traffic).
    fn lazy_refresh_group(&mut self, group: NodeId) {
        for u in self.tree.descendant_units(group) {
            // Recomputed summaries mutate the stored unit image.
            self.dirty.mark(u);
            self.units[u].recompute_summaries();
            self.tree.update_leaf_summary(&self.units[u]);
        }
        // Replica multicast to every storage unit (§3.4).
        self.maintenance_messages += self.units.len() as u64;
        // Version chains covered by the refreshed index are folded in.
        if let Some(vs) = self.versions.get_mut(&group) {
            let mut scratch = Vec::new();
            let bytes = vs.flush_into(&mut scratch);
            let _ = bytes;
            // Multicast of the flushed versions to remote replicas.
            self.maintenance_messages += self.units.len() as u64;
        }
    }

    /// Bulk deletion for admin/GC sweeps (retention policies, dedup
    /// purges): groups `ids` by owning unit and removes each unit's
    /// batch with **one** compaction + summary recompute
    /// ([`StorageUnit::remove_files`]) instead of the change stream's
    /// per-file removal, then republishes the fresh leaf summaries to
    /// the index — the deleting units come out *consistent*, not stale,
    /// so no lazy-update debt accrues. Version chains record the
    /// deletes (off-line replicas may still hold the ids), ownership
    /// and dirty tracking update as usual. Unknown ids are ignored;
    /// returns the number of records removed.
    ///
    /// This is the in-memory admin path, deliberately not journaled —
    /// route individual deletes through
    /// [`Self::apply_change_journaled`] when a WAL must see them, or
    /// snapshot after the sweep.
    pub fn remove_files_bulk(&mut self, ids: &[u64]) -> usize {
        let mut per_unit: HashMap<usize, Vec<u64>> = HashMap::new();
        for &id in ids {
            if let Some(&u) = self.owner.get(&id) {
                per_unit.entry(u).or_default().push(id);
            }
        }
        // lint:allow(D002) -- collected then sorted below
        let mut units: Vec<usize> = per_unit.keys().copied().collect();
        units.sort_unstable();
        let mut removed_total = 0;
        for u in units {
            self.dirty.mark(u);
            let removed = self.units[u].remove_files(&per_unit[&u]);
            let group = self.group_of_unit(u);
            for f in &removed {
                self.owner.remove(&f.file_id);
                if self.versioning_enabled {
                    self.versions
                        .entry(group)
                        .or_insert_with(|| VersionStore::new(self.cfg.version_ratio))
                        .record(Change::Delete(f.file_id));
                }
            }
            removed_total += removed.len();
            self.tree.update_leaf_summary(&self.units[u]);
        }
        removed_total
    }

    /// Migrates every Bloom filter to `cfg.bloom_family`, rebuilding
    /// unit filters from their file names and tree filters bottom-up
    /// from the units. Returns the number of unit filters rebuilt
    /// (0 = nothing to do, filters already match the config).
    ///
    /// This is the open-path hook for persisted images written under a
    /// different hash family (v2 images are always MD5). Only Bloom
    /// state changes: centroids and MBRs keep whatever (possibly stale)
    /// values were persisted, because staleness is answer-relevant
    /// (§3.4). Rebuilt filters are *fresh* — names journaled since the
    /// last summary refresh become visible to point routing, which is
    /// exactly the effect of a lazy update (§3.4) arriving early, never
    /// a lost answer. Every unit is marked dirty so the next compaction
    /// rewrites the full image under the new family.
    pub fn migrate_bloom_family(&mut self) -> usize {
        let family = self.cfg.bloom_family;
        let mut migrated = 0usize;
        for u in &mut self.units {
            if u.bloom().family() != family {
                u.rebuild_bloom(family);
                migrated += 1;
            }
        }
        if migrated > 0 {
            self.tree.rebuild_blooms(&self.units);
            self.dirty.mark_all(self.units.len());
        }
        migrated
    }

    /// Forces a full index rebuild (reconfiguration): recomputes unit
    /// summaries, rebuilds the tree and mapping, clears version chains.
    pub fn reconfigure(&mut self) {
        self.dirty.mark_all(self.units.len());
        for u in &mut self.units {
            u.recompute_summaries();
        }
        self.tree = SemanticRTree::build(&self.units, &self.cfg);
        self.mapping = map_index_units(&self.tree, &mut self.rng);
        self.versions.clear();
        for g in self.tree.first_level_index_units() {
            self.versions
                .insert(g, VersionStore::new(self.cfg.version_ratio));
        }
        self.pending.clear();
    }

    fn apply_versions_to_range(&self, lo: &[f64], hi: &[f64], results: &mut Vec<u64>) -> usize {
        let mut scanned = 0;
        // Push/retain below is order-sensitive across version chains, so
        // walk the groups in id order.
        let mut group_ids: Vec<NodeId> = self.versions.keys().copied().collect(); // lint:allow(D002) -- sorted next line
        group_ids.sort_unstable();
        for g in group_ids {
            let Some(vs) = self.versions.get(&g) else {
                continue;
            };
            let (effective, s) = vs.effective_changes();
            scanned += s;
            for ch in effective {
                match ch {
                    Change::Insert(f) | Change::Modify(f) => {
                        let v = f.attr_vector();
                        let inside = v
                            .iter()
                            .zip(lo.iter().zip(hi))
                            .all(|(&x, (&l, &h))| l <= x && x <= h);
                        if inside {
                            results.push(f.file_id);
                        } else {
                            results.retain(|&id| id != f.file_id);
                        }
                    }
                    Change::Delete(id) => results.retain(|&x| x != *id),
                }
            }
        }
        scanned
    }

    fn apply_versions_to_topk(&self, point: &[f64], k: usize, best: &mut Vec<(u64, f64)>) -> usize {
        let mut scanned = 0;
        // Retain/push below is order-sensitive across version chains, so
        // walk the groups in id order.
        let mut group_ids: Vec<NodeId> = self.versions.keys().copied().collect(); // lint:allow(D002) -- sorted next line
        group_ids.sort_unstable();
        for g in group_ids {
            let Some(vs) = self.versions.get(&g) else {
                continue;
            };
            let (effective, s) = vs.effective_changes();
            scanned += s;
            for ch in effective {
                match ch {
                    Change::Insert(f) | Change::Modify(f) => {
                        let d = f
                            .attr_vector()
                            .iter()
                            .zip(point)
                            .map(|(&a, &q)| (a - q) * (a - q))
                            .sum::<f64>();
                        best.retain(|&(id, _)| id != f.file_id);
                        best.push((f.file_id, d));
                    }
                    Change::Delete(id) => best.retain(|&(x, _)| x != *id),
                }
            }
        }
        best.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        best.truncate(k);
        scanned
    }

    /// Inserts a whole storage unit into the running system (§3.2.1).
    pub fn add_unit(&mut self, files: Vec<FileMetadata>) -> usize {
        let id = self.units.len();
        self.dirty.mark(id);
        for f in &files {
            self.owner.insert(f.file_id, id);
        }
        let unit = StorageUnit::with_family(
            id,
            self.cfg.bloom_bits,
            self.cfg.bloom_hashes,
            self.cfg.bloom_family,
            files,
        );
        self.tree.insert_unit(&unit);
        self.units.push(unit);
        // Group membership may have changed: make sure every group has a
        // version chain.
        for g in self.tree.first_level_index_units() {
            self.versions
                .entry(g)
                .or_insert_with(|| VersionStore::new(self.cfg.version_ratio));
        }
        id
    }

    /// Random home unit for a query (the paper's entry point, §2.2).
    pub fn random_home(&mut self) -> usize {
        self.rng.gen_range(0..self.units.len())
    }
}
