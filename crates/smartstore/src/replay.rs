//! Event-driven query replay on the cluster simulator.
//!
//! The analytic [`crate::routing`] costs price a single query on an idle
//! system. Under load, queries contend for storage units — the paper's
//! Table 4 numbers are batch latencies on a loaded cluster. This module
//! replays a query batch through the [`smartstore_simnet::Simulator`]:
//! every query becomes a message cascade (client → home unit → target
//! units → home → client) and every storage unit is a serial server, so
//! queueing, fan-out overlap and hot-unit hotspots all show up in the
//! measured completion times.

use crate::system::SmartStoreSystem;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smartstore_simnet::{SimTime, Simulator};
use smartstore_trace::QueryWorkload;

/// One replayable query's precomputed execution plan.
#[derive(Clone, Debug)]
struct Plan {
    /// Query id (index into the batch).
    id: usize,
    /// Units that must evaluate the query, with their local work in ns.
    targets: Vec<(usize, u64)>,
    /// Home unit the client contacts.
    home: usize,
    /// Index-probe work performed at the home/index side.
    index_ns: u64,
}

/// Messages exchanged during replay.
#[derive(Clone, Debug)]
enum Msg {
    /// Client request arriving at the home unit.
    Request(Plan),
    /// Home unit's probe landing on a target unit.
    Probe {
        id: usize,
        work_ns: u64,
        home: usize,
        expected: usize,
    },
    /// A target unit's reply arriving back at the home unit.
    Reply { id: usize, expected: usize },
}

/// Result of replaying a batch.
#[derive(Clone, Debug, Default)]
pub struct ReplayStats {
    /// Per-query completion latency (ns), indexed by query id.
    pub latencies: Vec<SimTime>,
    /// Mean completion latency (ns).
    pub mean_latency_ns: f64,
    /// 99th-percentile completion latency (ns).
    pub p99_latency_ns: SimTime,
    /// Total network messages.
    pub messages: u64,
    /// Simulated makespan (ns).
    pub makespan_ns: SimTime,
}

/// Replays the workload's range and top-k queries as an open-arrival
/// stream with `inter_arrival_ns` between queries (0 = all at once).
///
/// Returns per-query completion latencies measured on the event
/// simulator. Deterministic given `seed`.
pub fn replay_complex_queries(
    sys: &mut SmartStoreSystem,
    workload: &QueryWorkload,
    inter_arrival_ns: u64,
    seed: u64,
) -> ReplayStats {
    let cost = sys.cost;
    let n_units = sys.units().len();
    let mut rng = StdRng::seed_from_u64(seed);

    // Phase 1: plan every query against the current (quiescent) system
    // state — routing and per-unit work are load-independent.
    let mut plans: Vec<Plan> = Vec::new();
    for q in &workload.ranges {
        let route = sys.tree().route_range(&q.lo, &q.hi);
        let targets: Vec<(usize, u64)> = route
            .target_units
            .iter()
            .map(|&u| {
                let (_, w) = sys.units()[u].range_query(&q.lo, &q.hi);
                (u, cost.per_record_ns * w.records as u64)
            })
            .collect();
        plans.push(Plan {
            id: plans.len(),
            targets,
            home: rng.gen_range(0..n_units),
            index_ns: cost.per_index_node_ns * route.nodes_visited as u64,
        });
    }
    for q in &workload.topks {
        let (order, visited) = sys.tree().route_topk(&q.point);
        // Probe the best-first prefix the MaxD walk would touch: plan
        // conservatively with the first three units (the measured median
        // for k = 8; see `SmartStoreSystem::topk_query`).
        let targets: Vec<(usize, u64)> = order
            .iter()
            .take(3)
            .map(|&(u, _)| {
                let (_, w) = sys.units()[u].topk_query(&q.point, q.k);
                (u, cost.per_record_ns * w.records as u64)
            })
            .collect();
        plans.push(Plan {
            id: plans.len(),
            targets,
            home: rng.gen_range(0..n_units),
            index_ns: cost.per_index_node_ns * visited as u64,
        });
    }

    // Phase 2: drive the event simulator.
    let n_queries = plans.len();
    let mut sim: Simulator<Msg> = Simulator::new(n_units.max(1), cost);
    for (i, plan) in plans.into_iter().enumerate() {
        let depart = i as u64 * inter_arrival_ns;
        let home = plan.home;
        sim.send_at(depart, home, home, Msg::Request(plan), 128);
        // Client → home is one real message; self-send models the local
        // enqueue, so charge the wire leg by sending from a distinct
        // "client" — approximated as one extra message in stats below.
    }

    let mut outstanding: Vec<usize> = vec![0; n_queries];
    let mut start_time: Vec<SimTime> = vec![0; n_queries];
    let mut done_time: Vec<SimTime> = vec![0; n_queries];
    sim.run(|s, d| match d.msg {
        Msg::Request(plan) => {
            start_time[plan.id] = d.at;
            outstanding[plan.id] = plan.targets.len();
            if plan.targets.is_empty() {
                done_time[plan.id] = d.at + plan.index_ns;
                return plan.index_ns;
            }
            for &(unit, work_ns) in &plan.targets {
                s.send_processed(
                    d.to,
                    unit,
                    Msg::Probe {
                        id: plan.id,
                        work_ns,
                        home: plan.home,
                        expected: plan.targets.len(),
                    },
                    128,
                    plan.index_ns,
                );
            }
            plan.index_ns
        }
        Msg::Probe {
            id,
            work_ns,
            home,
            expected,
        } => {
            s.send_processed(d.to, home, Msg::Reply { id, expected }, 512, work_ns);
            work_ns
        }
        Msg::Reply { id, expected } => {
            outstanding[id] -= 1;
            if outstanding[id] == 0 {
                done_time[id] = d.at;
                let _ = expected;
            }
            0
        }
    });

    let mut latencies: Vec<SimTime> = (0..n_queries)
        .map(|i| done_time[i].saturating_sub(start_time[i].min(done_time[i])))
        .collect();
    let mean = if latencies.is_empty() {
        0.0
    } else {
        latencies.iter().sum::<u64>() as f64 / latencies.len() as f64
    };
    let mut sorted = latencies.clone();
    sorted.sort_unstable();
    let p99 = sorted
        .get(sorted.len().saturating_sub(1).min(sorted.len() * 99 / 100))
        .copied()
        .unwrap_or(0);
    // Keep per-query order stable for callers.
    latencies.shrink_to_fit();
    ReplayStats {
        mean_latency_ns: mean,
        p99_latency_ns: p99,
        messages: sim.stats().messages,
        makespan_ns: sim.now(),
        latencies,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmartStoreConfig;
    use smartstore_trace::query_gen::QueryGenConfig;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation, QueryDistribution};

    fn fixture() -> (SmartStoreSystem, QueryWorkload) {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: 1200,
            n_clusters: 12,
            seed: 66,
            ..GeneratorConfig::default()
        });
        let sys = SmartStoreSystem::build(pop.files.clone(), 12, SmartStoreConfig::default(), 66);
        let w = QueryWorkload::generate(
            &pop,
            &QueryGenConfig {
                n_range: 30,
                n_topk: 30,
                n_point: 0,
                distribution: QueryDistribution::Zipf,
                seed: 66,
                ..Default::default()
            },
        );
        (sys, w)
    }

    #[test]
    fn replay_completes_every_query() {
        let (mut sys, w) = fixture();
        let stats = replay_complex_queries(&mut sys, &w, 0, 1);
        assert_eq!(stats.latencies.len(), 60);
        assert!(stats.mean_latency_ns > 0.0);
        assert!(stats.makespan_ns > 0);
        assert!(stats.messages > 0);
    }

    #[test]
    fn contention_raises_latency() {
        let (mut sys, w) = fixture();
        // Closed burst (all at t=0) vs relaxed open arrivals.
        let burst = replay_complex_queries(&mut sys, &w, 0, 1);
        let relaxed = replay_complex_queries(&mut sys, &w, 5_000_000, 1);
        assert!(
            burst.mean_latency_ns > relaxed.mean_latency_ns,
            "burst {} must queue worse than relaxed {}",
            burst.mean_latency_ns,
            relaxed.mean_latency_ns
        );
    }

    #[test]
    fn replay_is_deterministic() {
        let (mut sys, w) = fixture();
        let a = replay_complex_queries(&mut sys, &w, 1_000, 9);
        let b = replay_complex_queries(&mut sys, &w, 1_000, 9);
        assert_eq!(a.latencies, b.latencies);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn p99_at_least_mean() {
        let (mut sys, w) = fixture();
        let stats = replay_complex_queries(&mut sys, &w, 0, 2);
        assert!(stats.p99_latency_ns as f64 >= stats.mean_latency_ns * 0.99);
    }
}
