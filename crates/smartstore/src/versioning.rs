//! Consistency via versioning (§4.4).
//!
//! SmartStore replicates index information (first-level index vectors,
//! the root) and accepts staleness between original and replica.
//! Consistency is recovered with *versions*: "from tᵢ₋₁ to tᵢ, updates
//! are aggregated into the tᵢ-th version that is attached to its
//! correlated index unit. These updates include insertion, deletion and
//! modification of file metadata." Queries "first check the original
//! information and then its versions from tᵢ to t₀" — rolled
//! *backwards*, newest first, so fresh changes win; removal applies the
//! aggregated changes and multicasts them to remote replicas.
//!
//! The *version ratio* (file modifications per version, Fig. 14)
//! controls aggregation: ratio 1 is comprehensive versioning (every
//! change is its own version, maximum space), larger ratios aggregate.

use smartstore_trace::FileMetadata;
use std::collections::HashSet;

/// One aggregated metadata change.
#[derive(Clone, Debug, PartialEq)]
pub enum Change {
    /// A file was created.
    Insert(FileMetadata),
    /// A file was deleted.
    Delete(u64),
    /// A file's metadata changed (new state carried in full).
    Modify(FileMetadata),
}

impl Change {
    /// The file id this change concerns.
    pub fn file_id(&self) -> u64 {
        match self {
            Change::Insert(f) | Change::Modify(f) => f.file_id,
            Change::Delete(id) => *id,
        }
    }

    /// Approximate wire/memory size of the change record.
    pub fn size_bytes(&self) -> usize {
        match self {
            // file id + 8 attrs + name estimate.
            Change::Insert(f) | Change::Modify(f) => 8 + 8 * 8 + f.name.len(),
            Change::Delete(_) => 8,
        }
    }
}

/// A sealed version: changes aggregated between two reconfiguration
/// points.
#[derive(Clone, Debug, Default)]
pub struct Version {
    /// Changes in arrival order.
    pub changes: Vec<Change>,
}

impl Version {
    /// Bytes attributable to this version (header + payload).
    pub fn size_bytes(&self) -> usize {
        Self::HEADER_BYTES + self.changes.iter().map(Change::size_bytes).sum::<usize>()
    }

    /// Fixed per-version bookkeeping cost (timestamps, links, labels).
    pub const HEADER_BYTES: usize = 64;
}

/// The version chain attached to one (first-level) index unit.
#[derive(Clone, Debug)]
pub struct VersionStore {
    version_ratio: u32,
    open: Version,
    sealed: Vec<Version>,
}

impl VersionStore {
    /// Creates an empty chain with the given modification-to-version
    /// ratio.
    ///
    /// # Panics
    /// If `version_ratio == 0`.
    pub fn new(version_ratio: u32) -> Self {
        assert!(version_ratio > 0, "VersionStore: ratio must be positive");
        Self {
            version_ratio,
            open: Version::default(),
            sealed: Vec::new(),
        }
    }

    /// Reassembles a chain from serialized state — the inverse of the
    /// [`Self::ratio`] / [`Self::sealed_versions`] / [`Self::open_version`]
    /// accessors.
    ///
    /// # Panics
    /// If `version_ratio == 0`.
    pub fn from_parts(version_ratio: u32, sealed: Vec<Version>, open: Version) -> Self {
        assert!(version_ratio > 0, "VersionStore: ratio must be positive");
        Self {
            version_ratio,
            open,
            sealed,
        }
    }

    /// The modification-to-version ratio.
    pub fn ratio(&self) -> u32 {
        self.version_ratio
    }

    /// The sealed versions, oldest first.
    pub fn sealed_versions(&self) -> &[Version] {
        &self.sealed
    }

    /// The currently open (unsealed) version.
    pub fn open_version(&self) -> &Version {
        &self.open
    }

    /// Records a change; seals the open version when it reaches the
    /// ratio.
    pub fn record(&mut self, change: Change) {
        self.open.changes.push(change);
        if self.open.changes.len() >= self.version_ratio as usize {
            self.sealed.push(std::mem::take(&mut self.open));
        }
    }

    /// Number of sealed versions.
    pub fn version_count(&self) -> usize {
        self.sealed.len() + usize::from(!self.open.changes.is_empty())
    }

    /// Total recorded changes (sealed + open).
    pub fn change_count(&self) -> usize {
        self.sealed.iter().map(|v| v.changes.len()).sum::<usize>() + self.open.changes.len()
    }

    /// Memory footprint of the chain (Fig. 14(a)).
    pub fn size_bytes(&self) -> usize {
        let open = if self.open.changes.is_empty() {
            0
        } else {
            self.open.size_bytes()
        };
        self.sealed.iter().map(Version::size_bytes).sum::<usize>() + open
    }

    /// Rolls the chain *backwards* (newest change first) and returns the
    /// effective latest state per file: the first occurrence of each
    /// file id wins ("version tᵢ usually contains newer information than
    /// version tᵢ₋₁"). Also returns the number of change records
    /// scanned, which the cost model converts into the extra latency of
    /// Fig. 14(b).
    pub fn effective_changes(&self) -> (Vec<&Change>, usize) {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut out = Vec::new();
        let mut scanned = 0;
        let newest_first = std::iter::once(&self.open)
            .chain(self.sealed.iter().rev())
            .flat_map(|v| v.changes.iter().rev());
        for ch in newest_first {
            scanned += 1;
            if seen.insert(ch.file_id()) {
                out.push(ch);
            }
        }
        (out, scanned)
    }

    /// Applies all changes to a base set of files and clears the chain —
    /// the reconfiguration step ("We first apply the changes of a
    /// version into its attached original index unit"). Returns the
    /// aggregate bytes that would be multicast to remote replicas.
    pub fn flush_into(&mut self, files: &mut Vec<FileMetadata>) -> usize {
        let bytes = self.size_bytes();
        let (effective, _) = self.effective_changes();
        // Clone the decisions out before mutating self.
        let decisions: Vec<Change> = effective.into_iter().cloned().collect();
        for ch in decisions {
            match ch {
                // Insert and Modify both upsert: the backward roll keeps
                // only the *newest* change per file, so an Insert that
                // follows a (shadowed) Delete must still replace the
                // base record — it carries the newest state.
                Change::Insert(f) | Change::Modify(f) => {
                    if let Some(slot) = files.iter_mut().find(|x| x.file_id == f.file_id) {
                        *slot = f;
                    } else {
                        files.push(f);
                    }
                }
                Change::Delete(id) => files.retain(|x| x.file_id != id),
            }
        }
        self.sealed.clear();
        self.open = Version::default();
        bytes
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    fn meta(id: u64, size: u64) -> FileMetadata {
        FileMetadata {
            file_id: id,
            name: format!("f{id}"),
            dir: "/d".into(),
            owner: 0,
            size,
            ctime: 0.0,
            mtime: 0.0,
            atime: 0.0,
            read_bytes: 0,
            write_bytes: 0,
            access_count: 1,
            proc_id: 0,
            truth_cluster: None,
        }
    }

    #[test]
    fn ratio_one_is_comprehensive() {
        let mut vs = VersionStore::new(1);
        for i in 0..5 {
            vs.record(Change::Insert(meta(i, 10)));
        }
        assert_eq!(vs.version_count(), 5, "every change its own version");
    }

    #[test]
    fn larger_ratio_aggregates() {
        let mut vs = VersionStore::new(4);
        for i in 0..8 {
            vs.record(Change::Insert(meta(i, 10)));
        }
        assert_eq!(vs.version_count(), 2);
    }

    #[test]
    fn space_decreases_with_ratio() {
        let sized = |ratio: u32| {
            let mut vs = VersionStore::new(ratio);
            for i in 0..64 {
                vs.record(Change::Modify(meta(i, 1)));
            }
            vs.size_bytes()
        };
        let s1 = sized(1);
        let s8 = sized(8);
        let s32 = sized(32);
        assert!(
            s1 > s8 && s8 > s32,
            "space must fall with ratio: {s1} {s8} {s32}"
        );
    }

    #[test]
    fn backward_roll_newest_wins() {
        let mut vs = VersionStore::new(2);
        vs.record(Change::Modify(meta(7, 100)));
        vs.record(Change::Modify(meta(7, 200)));
        vs.record(Change::Modify(meta(7, 300)));
        let (eff, scanned) = vs.effective_changes();
        assert_eq!(eff.len(), 1);
        match eff[0] {
            Change::Modify(f) => assert_eq!(f.size, 300, "newest modification wins"),
            _ => panic!("unexpected change kind"),
        }
        assert_eq!(scanned, 3);
    }

    #[test]
    fn delete_shadows_older_insert() {
        let mut vs = VersionStore::new(8);
        vs.record(Change::Insert(meta(3, 10)));
        vs.record(Change::Delete(3));
        let (eff, _) = vs.effective_changes();
        assert_eq!(eff.len(), 1);
        assert!(matches!(eff[0], Change::Delete(3)));
    }

    #[test]
    fn flush_applies_and_clears() {
        let mut vs = VersionStore::new(4);
        let mut files = vec![meta(1, 10), meta(2, 20)];
        vs.record(Change::Modify(meta(1, 111)));
        vs.record(Change::Delete(2));
        vs.record(Change::Insert(meta(3, 30)));
        let bytes = vs.flush_into(&mut files);
        assert!(bytes > 0);
        assert_eq!(vs.version_count(), 0);
        assert_eq!(vs.change_count(), 0);
        let ids: Vec<u64> = files.iter().map(|f| f.file_id).collect();
        assert!(ids.contains(&1) && ids.contains(&3) && !ids.contains(&2));
        assert_eq!(files.iter().find(|f| f.file_id == 1).unwrap().size, 111);
    }

    #[test]
    fn flush_modify_of_unknown_file_inserts() {
        let mut vs = VersionStore::new(4);
        let mut files = Vec::new();
        vs.record(Change::Modify(meta(9, 99)));
        vs.flush_into(&mut files);
        assert_eq!(files.len(), 1);
        assert_eq!(files[0].size, 99);
    }

    #[test]
    fn empty_chain_is_free() {
        let vs = VersionStore::new(4);
        assert_eq!(vs.size_bytes(), 0);
        assert_eq!(vs.version_count(), 0);
        let (eff, scanned) = vs.effective_changes();
        assert!(eff.is_empty());
        assert_eq!(scanned, 0);
    }

    #[test]
    #[should_panic]
    fn zero_ratio_panics() {
        VersionStore::new(0);
    }
}
