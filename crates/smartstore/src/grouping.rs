//! LSI-driven semantic grouping (§3.1).
//!
//! Two grouping problems appear in the paper and both are solved here:
//!
//! 1. **File placement** — partition file metadata into `N` storage
//!    units of approximately equal size such that intra-unit correlation
//!    beats inter-unit correlation (Statement 1, §3.1.1). Implemented as
//!    K-means over LSI semantic coordinates followed by a balancing pass
//!    ([`partition_balanced`]).
//! 2. **Unit aggregation** — iteratively merge storage units (and then
//!    groups) whose pairwise LSI correlation exceeds the per-level
//!    admission threshold εᵢ, "the one with the largest correlation
//!    value will be chosen" (§3.1.2), producing the level structure of
//!    the semantic R-tree ([`group_level`], [`build_hierarchy`]).
//!
//! The paper's semantic-correlation measure `Σᵢ Σ_{fⱼ∈Gᵢ} (fⱼ − Cᵢ)²`
//! ([`wcss`]) drives the optimal-threshold search of Fig. 11
//! ([`optimal_threshold`]).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rayon::prelude::*;
use smartstore_linalg::{kmeans, sq_euclidean, Lsi, LsiConfig};

/// One level of grouping: which input items belong to which group.
#[derive(Clone, Debug)]
pub struct LevelGrouping {
    /// `groups[g]` lists the input-item indexes in group `g`.
    pub groups: Vec<Vec<usize>>,
    /// Raw-attribute centroid of each group.
    pub centroids: Vec<Vec<f64>>,
    /// The admission threshold used.
    pub epsilon: f64,
}

/// The full bottom-up hierarchy: `levels[0]` groups the leaf items,
/// `levels[1]` groups the level-0 groups, … the last level has exactly
/// one group (the root).
#[derive(Clone, Debug)]
pub struct GroupingHierarchy {
    /// Per-level groupings, bottom-up.
    pub levels: Vec<LevelGrouping>,
}

/// Centroid (arithmetic mean) of a set of vectors, written into a
/// caller-provided scratch buffer (resized to the vector dimension) so
/// hot loops can amortize the allocation across groups.
fn centroid_into(vectors: &[Vec<f64>], members: &[usize], c: &mut Vec<f64>) {
    let d = vectors[members[0]].len();
    c.clear();
    c.resize(d, 0.0);
    for &m in members {
        for (ci, &x) in c.iter_mut().zip(&vectors[m]) {
            *ci += x;
        }
    }
    for ci in c.iter_mut() {
        *ci /= members.len() as f64;
    }
}

/// Centroid (arithmetic mean) of a set of vectors.
fn centroid(vectors: &[Vec<f64>], members: &[usize]) -> Vec<f64> {
    let mut c = Vec::new();
    centroid_into(vectors, members, &mut c);
    c
}

/// Within-group sum of squares — the paper's semantic-correlation
/// measure `Σᵢ Σ_{fⱼ∈Gᵢ} (fⱼ − Cᵢ)²` (§1.1).
///
/// One centroid scratch buffer is reused across all groups (this runs
/// once per candidate ε in the [`optimal_threshold`] sweep).
pub fn wcss(vectors: &[Vec<f64>], groups: &[Vec<usize>]) -> f64 {
    let mut scratch = Vec::new();
    groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| {
            centroid_into(vectors, g, &mut scratch);
            g.iter()
                .map(|&m| sq_euclidean(&vectors[m], &scratch))
                .sum::<f64>()
        })
        .sum()
}

/// Groups items whose pairwise LSI correlation exceeds `epsilon`.
///
/// Greedy agglomeration in descending correlation order: for each item
/// the partner with the largest correlation is preferred (§3.2.1), and
/// merges respect `max_group_size` so that "group sizes are
/// approximately equal" (Statement 1).
pub fn group_level(
    vectors: &[Vec<f64>],
    epsilon: f64,
    lsi_rank: usize,
    max_group_size: usize,
) -> LevelGrouping {
    let n = vectors.len();
    assert!(n > 0, "group_level: no items");
    assert!(
        max_group_size >= 2,
        "group_level: max_group_size must allow merging"
    );
    if n == 1 {
        return LevelGrouping {
            groups: vec![vec![0]],
            centroids: vec![vectors[0].clone()],
            epsilon,
        };
    }

    let sims = kernel_similarities(vectors, lsi_rank);
    let pairs = upper_triangle_pairs(&sims, Some(epsilon));

    // Union-find with size caps.
    let mut parent: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for (i, j, _) in pairs {
        let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
        if ri != rj && size[ri] + size[rj] <= max_group_size {
            parent[rj] = ri;
            size[ri] += size[rj];
        }
    }

    let mut by_root: std::collections::HashMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let r = find(&mut parent, i);
        by_root.entry(r).or_default().push(i);
    }
    // lint:allow(D002) -- members were pushed in index order and groups are sorted below
    let mut groups: Vec<Vec<usize>> = by_root.into_values().collect();
    // Deterministic order: by smallest member.
    groups.sort_by_key(|g| g[0]);
    let centroids = groups.par_iter().map(|g| centroid(vectors, g)).collect();
    LevelGrouping {
        groups,
        centroids,
        epsilon,
    }
}

/// Builds the full hierarchy bottom-up: level `i` groups the centroids
/// of level `i−1` with threshold εᵢ, "recursively aggregated until all
/// of them form a single one, the root" (§3.1.2).
///
/// If a level makes no progress under its threshold, the most correlated
/// pairs are force-merged so the recursion is guaranteed to reach a
/// single root.
pub fn build_hierarchy(
    leaf_vectors: &[Vec<f64>],
    thresholds: impl Fn(usize) -> f64,
    lsi_rank: usize,
    fanout: usize,
) -> GroupingHierarchy {
    assert!(!leaf_vectors.is_empty(), "build_hierarchy: no leaves");
    let mut levels = Vec::new();
    let mut current: Vec<Vec<f64>> = leaf_vectors.to_vec();
    let mut level_idx = 1;
    while current.len() > 1 {
        let eps = thresholds(level_idx);
        let mut grouped = group_level(&current, eps, lsi_rank, fanout);
        if grouped.groups.len() == current.len() {
            // No merges happened: force-pair nearest centroids so the
            // hierarchy always terminates at a root.
            grouped = force_pair(&current, eps, lsi_rank, fanout);
        }
        let centroids = grouped.centroids.clone();
        levels.push(grouped);
        current = centroids;
        level_idx += 1;
        assert!(level_idx < 64, "build_hierarchy: runaway recursion");
    }
    if levels.is_empty() {
        // Single leaf: root == leaf.
        levels.push(LevelGrouping {
            groups: vec![vec![0]],
            centroids: vec![leaf_vectors[0].clone()],
            epsilon: thresholds(1),
        });
    }
    GroupingHierarchy { levels }
}

/// All upper-triangle `(i, j, sims[i][j])` pairs with `i < j` —
/// restricted to correlations strictly above `min` when given — sorted
/// by correlation descending (ties by lower `i`, then original
/// enumeration order under the stable sort).
///
/// The O(n²) scan is parallel over rows; flattening in row order
/// reproduces the sequential i-major, j-minor enumeration exactly, so
/// the result is bit-identical at every thread count. Both grouping
/// paths ([`group_level`], [`force_pair`]) share this enumeration —
/// keeping them in lockstep is what preserves the parallel ≡
/// sequential property.
fn upper_triangle_pairs(sims: &[Vec<f64>], min: Option<f64>) -> Vec<(usize, usize, f64)> {
    let n = sims.len();
    let row_pairs: Vec<Vec<(usize, usize, f64)>> = (0..n)
        .into_par_iter()
        .map(|i| {
            sims[i][i + 1..]
                .iter()
                .enumerate()
                .filter(|&(_, &c)| min.is_none_or(|m| c > m))
                .map(|(off, &c)| (i, i + 1 + off, c))
                .collect()
        })
        .collect();
    let mut pairs: Vec<(usize, usize, f64)> = row_pairs.into_iter().flatten().collect();
    pairs.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
    pairs
}

/// Pairwise similarity in the LSI semantic subspace via a Gaussian
/// kernel on Euclidean distance: `exp(-d²/(2·median_d²))`, mapped to
/// [0, 1]. Compared with the raw inner product this respects
/// *locality* — items with nearby semantic coordinates score high, items
/// merely pointing in the same direction do not — which is what the
/// admission-threshold semantics of §3.1.2 need.
///
/// Both O(n²) sweeps (distances, kernel transform) run in parallel
/// over rows on the workspace thread pool; the output is bit-identical
/// to a sequential evaluation at every thread count (property-tested
/// in `tests/parallel.rs`).
pub fn kernel_similarities(vectors: &[Vec<f64>], lsi_rank: usize) -> Vec<Vec<f64>> {
    let n = vectors.len();
    let lsi = Lsi::fit_items(
        vectors,
        LsiConfig {
            rank: lsi_rank,
            standardize: true,
        },
    );
    let coords: Vec<&[f64]> = (0..n).map(|i| lsi.item_coords(i)).collect();
    // O(n²) pairwise distances, parallel over rows.
    let d2: Vec<Vec<f64>> = (0..n)
        .into_par_iter()
        .map(|i| (0..n).map(|j| sq_euclidean(coords[i], coords[j])).collect())
        .collect();
    let mut all: Vec<f64> = Vec::with_capacity(n * (n - 1) / 2);
    for (i, row) in d2.iter().enumerate() {
        all.extend_from_slice(&row[i + 1..]);
    }
    all.sort_by(|a, b| a.total_cmp(b));
    let median = all.get(all.len() / 2).copied().unwrap_or(1.0).max(1e-12);
    d2.into_par_iter()
        .enumerate()
        .map(|(i, row)| {
            row.into_iter()
                .enumerate()
                .map(|(j, d)| {
                    if i == j {
                        1.0
                    } else {
                        (-d / (2.0 * median)).exp()
                    }
                })
                .collect()
        })
        .collect()
}

/// Pairs items with their best partner regardless of the threshold
/// (greedy matching by descending correlation), capped by `fanout`.
fn force_pair(vectors: &[Vec<f64>], epsilon: f64, lsi_rank: usize, fanout: usize) -> LevelGrouping {
    let n = vectors.len();
    let sims = kernel_similarities(vectors, lsi_rank);
    let pairs = upper_triangle_pairs(&sims, None);
    let mut assigned = vec![false; n];
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, j, _) in pairs {
        if !assigned[i] && !assigned[j] {
            assigned[i] = true;
            assigned[j] = true;
            groups.push(vec![i, j]);
        }
    }
    for (i, done) in assigned.iter().enumerate() {
        if !done {
            // Attach leftovers to the smallest existing group with room,
            // or start a singleton.
            if let Some(g) = groups
                .iter_mut()
                .filter(|g| g.len() < fanout)
                .min_by_key(|g| g.len())
            {
                g.push(i);
            } else {
                groups.push(vec![i]);
            }
        }
    }
    groups.sort_by_key(|g| g[0]);
    for g in &mut groups {
        g.sort_unstable();
    }
    let centroids = groups.par_iter().map(|g| centroid(vectors, g)).collect();
    LevelGrouping {
        groups,
        centroids,
        epsilon,
    }
}

/// Partitions items into `n_parts` balanced semantic groups: K-means
/// over LSI coordinates, then overflow rebalancing so that every part
/// holds `len/n_parts` items ±1 ("group sizes are approximately equal",
/// Statement 1). Returns `assignment[i] = part`.
pub fn partition_balanced(
    vectors: &[Vec<f64>],
    n_parts: usize,
    lsi_rank: usize,
    seed: u64,
) -> Vec<usize> {
    let n = vectors.len();
    assert!(n_parts > 0, "partition_balanced: need at least one part");
    assert!(n >= n_parts, "partition_balanced: more parts than items");
    let lsi = Lsi::fit_items(
        vectors,
        LsiConfig {
            rank: lsi_rank,
            standardize: true,
        },
    );
    balanced_from_lsi(&lsi, n, n_parts, seed)
}

/// [`partition_balanced`] over a flat row-major `n × dims` item table —
/// the allocation-free SoA entry point (one table allocation instead of
/// a `Vec` per item). Bit-identical to the slice-of-vectors form over
/// the same values.
pub fn partition_balanced_flat(
    table: &[f64],
    dims: usize,
    n_parts: usize,
    lsi_rank: usize,
    seed: u64,
) -> Vec<usize> {
    // dims > 0 and the length-multiple invariant are re-asserted by
    // `Lsi::fit_flat` below.
    assert!(
        dims > 0,
        "partition_balanced_flat: need at least one dimension"
    );
    let n = table.len() / dims;
    assert!(
        n_parts > 0,
        "partition_balanced_flat: need at least one part"
    );
    assert!(
        n >= n_parts,
        "partition_balanced_flat: more parts than items"
    );
    let lsi = Lsi::fit_flat(
        table,
        dims,
        LsiConfig {
            rank: lsi_rank,
            standardize: true,
        },
    );
    balanced_from_lsi(&lsi, n, n_parts, seed)
}

/// Shared balanced-partition tail over a fitted LSI model.
fn balanced_from_lsi(lsi: &Lsi, n: usize, n_parts: usize, seed: u64) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = (0..n).map(|i| lsi.item_coords(i).to_vec()).collect();
    partition_coords(n, &coords, n_parts, seed)
}

/// [`partition_balanced`] without the LSI projection: K-means directly
/// on standardized raw attribute vectors. Used by the grouping ablation
/// to isolate what the semantic projection buys.
pub fn partition_balanced_raw(vectors: &[Vec<f64>], n_parts: usize, seed: u64) -> Vec<usize> {
    let n = vectors.len();
    assert!(
        n_parts > 0,
        "partition_balanced_raw: need at least one part"
    );
    assert!(
        n >= n_parts,
        "partition_balanced_raw: more parts than items"
    );
    let d = vectors[0].len();
    // Standardize per dimension so heterogeneous scales don't dominate.
    let mut mean = vec![0.0; d];
    let mut var = vec![0.0; d];
    for v in vectors {
        for (m, &x) in mean.iter_mut().zip(v) {
            *m += x;
        }
    }
    for m in &mut mean {
        *m /= n as f64;
    }
    for v in vectors {
        for ((s, &m), &x) in var.iter_mut().zip(&mean).zip(v) {
            *s += (x - m) * (x - m);
        }
    }
    let coords: Vec<Vec<f64>> = vectors
        .iter()
        .map(|v| {
            v.iter()
                .enumerate()
                .map(|(i, &x)| {
                    let sd = (var[i] / n as f64).sqrt();
                    if sd > 1e-12 {
                        (x - mean[i]) / sd
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    partition_coords(n, &coords, n_parts, seed)
}

/// Shared balanced-K-means core over precomputed coordinates.
fn partition_coords(n: usize, coords: &[Vec<f64>], n_parts: usize, seed: u64) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(seed);
    let km = kmeans(coords, n_parts, 100, &mut rng);
    let mut assignment = km.assignments;

    // Balance: cap = ceil(n / n_parts); move farthest members of
    // overfull parts to the nearest underfull part.
    let cap = n.div_ceil(n_parts);
    let mut counts = vec![0usize; n_parts];
    for &a in &assignment {
        counts[a] += 1;
    }
    while let Some(over) = (0..n_parts).find(|&p| counts[p] > cap) {
        // The member of `over` farthest from its centroid moves.
        let Some((victim, _)) = assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == over)
            .map(|(i, _)| (i, sq_euclidean(&coords[i], &km.centroids[over])))
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break;
        };
        let Some(dest) = (0..n_parts).filter(|&p| counts[p] < cap).min_by(|&a, &b| {
            let da = sq_euclidean(&coords[victim], &km.centroids[a]);
            let db = sq_euclidean(&coords[victim], &km.centroids[b]);
            da.total_cmp(&db)
        }) else {
            break;
        };
        assignment[victim] = dest;
        counts[over] -= 1;
        counts[dest] += 1;
    }
    assignment
}

/// Partitions items into `n_parts` equal-size, spatially coherent
/// semantic groups by recursive sort-and-tile over LSI coordinates
/// (the Sort-Tile-Recursive idea applied to the semantic subspace).
///
/// Compared with [`partition_balanced`] (K-means), tiling guarantees
/// both exact balance and contiguity in the semantic space, which keeps
/// each latent file cluster inside one or two storage units — the
/// property the paper's grouping efficiency (Fig. 8) depends on. This is
/// the default placement used by `SmartStoreSystem::build`.
pub fn partition_tiled(vectors: &[Vec<f64>], n_parts: usize, lsi_rank: usize) -> Vec<usize> {
    let n = vectors.len();
    assert!(n_parts > 0, "partition_tiled: need at least one part");
    assert!(n >= n_parts, "partition_tiled: more parts than items");
    let lsi = Lsi::fit_items(
        vectors,
        LsiConfig {
            rank: lsi_rank,
            standardize: true,
        },
    );
    tiled_from_lsi(&lsi, n, n_parts)
}

/// [`partition_tiled`] over a flat row-major `n × dims` item table —
/// the allocation-free SoA entry point used by the system/service build
/// paths (`attr_subset_table` feeds it directly). Bit-identical to the
/// slice-of-vectors form over the same values.
pub fn partition_tiled_flat(
    table: &[f64],
    dims: usize,
    n_parts: usize,
    lsi_rank: usize,
) -> Vec<usize> {
    // dims > 0 and the length-multiple invariant are re-asserted by
    // `Lsi::fit_flat` below.
    assert!(
        dims > 0,
        "partition_tiled_flat: need at least one dimension"
    );
    let n = table.len() / dims;
    assert!(n_parts > 0, "partition_tiled_flat: need at least one part");
    assert!(n >= n_parts, "partition_tiled_flat: more parts than items");
    let lsi = Lsi::fit_flat(
        table,
        dims,
        LsiConfig {
            rank: lsi_rank,
            standardize: true,
        },
    );
    tiled_from_lsi(&lsi, n, n_parts)
}

/// Shared sort-tile tail over a fitted LSI model.
fn tiled_from_lsi(lsi: &Lsi, n: usize, n_parts: usize) -> Vec<usize> {
    let coords: Vec<Vec<f64>> = (0..n).map(|i| lsi.item_coords(i).to_vec()).collect();
    let cap = n.div_ceil(n_parts);
    let mut order: Vec<usize> = (0..n).collect();
    let mut runs: Vec<Vec<usize>> = Vec::with_capacity(n_parts);
    tile_rec(&coords, &mut order, 0, cap, &mut runs);

    // Gap-aware cuts make the run count approximate; normalize to
    // exactly `n_parts` non-empty runs by merging the smallest adjacent
    // pairs (too many runs) or splitting the largest runs at their
    // widest internal gap (too few).
    while runs.len() > n_parts {
        let Some((idx, _)) = runs
            .windows(2)
            .enumerate()
            .map(|(i, w)| (i, w[0].len() + w[1].len()))
            .min_by_key(|&(_, s)| s)
        else {
            break;
        };
        let merged = runs.remove(idx + 1);
        runs[idx].extend(merged);
    }
    while runs.len() < n_parts {
        let Some(idx) = (0..runs.len()).max_by_key(|&i| runs[i].len()) else {
            break;
        };
        let run = runs.remove(idx);
        debug_assert!(run.len() >= 2, "cannot split a singleton run");
        // Split at the widest gap on the last tiling axis (runs are
        // sorted by it), keeping halves within ±cap/3 of even.
        let axis = coords[0].len() - 1;
        let target = run.len() / 2;
        let window = (run.len() / 3).max(1);
        let cut =
            snap_to_gap(&coords, &run, axis, target, window, 0, run.len()).clamp(1, run.len() - 1);
        let (a, b) = run.split_at(cut);
        runs.insert(idx, b.to_vec());
        runs.insert(idx, a.to_vec());
    }

    let mut assignment = vec![0usize; n];
    for (part, run) in runs.iter().enumerate() {
        for &i in run {
            assignment[i] = part;
        }
    }
    assignment
}

/// Recursively sorts `items` (indices into `coords`) by the current axis
/// and cuts into slabs until runs fit within `cap`.
///
/// Cuts are *gap-aware*: near each nominal cut position the largest
/// coordinate gap within a ±`cap/3` window is chosen, so tight semantic
/// clusters (which show up as dense runs separated by gaps) are not
/// split across slabs. Run sizes therefore vary around `cap` but stay
/// within ±a third of it ("group sizes are approximately equal").
fn tile_rec(
    coords: &[Vec<f64>],
    items: &mut [usize],
    axis: usize,
    cap: usize,
    out: &mut Vec<Vec<usize>>,
) {
    let n = items.len();
    let dim = coords.first().map_or(1, |c| c.len().max(1));
    if n <= cap {
        out.push(items.to_vec());
        return;
    }
    let axis = axis.min(dim - 1);
    items.sort_by(|&a, &b| coords[a][axis].total_cmp(&coords[b][axis]));
    let last_axis = axis + 1 >= dim;
    let parts_needed = n.div_ceil(cap);
    let slabs = if last_axis {
        parts_needed
    } else {
        let remaining_axes = (dim - axis) as f64;
        (parts_needed as f64)
            .powf(1.0 / remaining_axes)
            .ceil()
            .max(1.0) as usize
    };
    let nominal = if last_axis {
        cap
    } else {
        // Whole multiples of cap so deeper splits stay balanced.
        (n.div_ceil(slabs)).div_ceil(cap) * cap
    };
    let window = cap / 3;
    let mut start = 0;
    while start < n {
        let target = (start + nominal).min(n);
        let end = if target >= n {
            n
        } else {
            snap_to_gap(coords, items, axis, target, window, start, n)
        };
        if last_axis {
            // Final runs still may exceed cap when the gap snap pushed
            // outward; split plainly in that case.
            let mut s = start;
            while s < end {
                let e = (s + cap).min(end);
                out.push(items[s..e].to_vec());
                s = e;
            }
        } else {
            tile_rec(coords, &mut items[start..end], axis + 1, cap, out);
        }
        start = end;
    }
}

/// Picks the cut index in `[target-window, target+window]` (clamped to
/// `(lo, hi)`) with the largest coordinate gap between neighbours.
fn snap_to_gap(
    coords: &[Vec<f64>],
    items: &[usize],
    axis: usize,
    target: usize,
    window: usize,
    lo: usize,
    hi: usize,
) -> usize {
    let from = target.saturating_sub(window).max(lo + 1);
    let to = (target + window).min(hi - 1);
    if from > to {
        return target.min(hi);
    }
    let mut best = target.min(hi);
    let mut best_gap = f64::NEG_INFINITY;
    for cut in from..=to {
        let gap = coords[items[cut]][axis] - coords[items[cut - 1]][axis];
        if gap > best_gap {
            best_gap = gap;
            best = cut;
        }
    }
    best
}

/// Sweeps the admission threshold and returns `(best_epsilon, best_j)`
/// minimizing the normalized objective
/// `WCSS(ε)/WCSS(one group) + α · n_groups(ε)/N` — tight groups are
/// good, but a grouping that degenerates into singletons is penalized.
/// This is the quantity behind the "optimal threshold" curves of
/// Fig. 11.
pub fn optimal_threshold(
    vectors: &[Vec<f64>],
    lsi_rank: usize,
    max_group_size: usize,
    alpha: f64,
) -> (f64, f64) {
    let n = vectors.len();
    assert!(n > 1, "optimal_threshold: need at least two items");
    let all: Vec<usize> = (0..n).collect();
    let base = wcss(vectors, &[all]).max(1e-12);
    let mut best = (0.0, f64::INFINITY);
    let mut eps = 0.50;
    while eps < 0.995 {
        let g = group_level(vectors, eps, lsi_rank, max_group_size);
        let j = wcss(vectors, &g.groups) / base + alpha * g.groups.len() as f64 / n as f64;
        if j < best.1 {
            best = (eps, j);
        }
        eps += 0.02;
    }
    best
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;

    /// Three well-separated blobs of 4-D vectors, `per` items each.
    fn blobs(per: usize) -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        let centers = [
            [0.0, 0.0, 0.0, 0.0],
            [10.0, 10.0, 0.0, 0.0],
            [0.0, 0.0, 10.0, 10.0],
        ];
        for (b, c) in centers.iter().enumerate() {
            for i in 0..per {
                let jit = 0.05 * ((i * 7 + b) % 5) as f64;
                v.push(vec![c[0] + jit, c[1] - jit, c[2] + jit, c[3] - jit]);
            }
        }
        v
    }

    #[test]
    fn grouping_is_a_partition() {
        let v = blobs(6);
        let g = group_level(&v, 0.9, 2, 8);
        let mut seen = vec![false; v.len()];
        for grp in &g.groups {
            for &m in grp {
                assert!(!seen[m], "item {m} in two groups");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "some item unassigned");
    }

    #[test]
    fn blobs_group_together() {
        let v = blobs(5);
        let g = group_level(&v, 0.9, 2, 8);
        // Each blob's items must share a group with blob-mates only.
        for grp in &g.groups {
            let blob_of = |i: usize| i / 5;
            let b0 = blob_of(grp[0]);
            assert!(
                grp.iter().all(|&m| blob_of(m) == b0),
                "group mixes blobs: {grp:?}"
            );
        }
        assert!(
            g.groups.len() <= 6,
            "15 items in 3 blobs should form few groups"
        );
    }

    #[test]
    fn max_group_size_respected() {
        let v = blobs(10);
        let g = group_level(&v, 0.5, 2, 4);
        assert!(g.groups.iter().all(|grp| grp.len() <= 4));
    }

    #[test]
    fn epsilon_one_yields_singletons() {
        let v = blobs(4);
        let g = group_level(&v, 1.0, 2, 8);
        assert_eq!(g.groups.len(), v.len(), "nothing exceeds correlation 1.0");
    }

    #[test]
    fn hierarchy_reaches_single_root() {
        let v = blobs(7);
        let h = build_hierarchy(&v, |l| 0.9 * 0.9f64.powi(l as i32 - 1), 2, 5);
        assert_eq!(h.levels.last().unwrap().groups.len(), 1);
        // Level item counts strictly decrease.
        let mut prev = v.len();
        for lvl in &h.levels {
            let total: usize = lvl.groups.iter().map(|g| g.len()).sum();
            assert_eq!(total, prev, "level must partition previous level");
            assert!(lvl.groups.len() < prev || prev == 1);
            prev = lvl.groups.len();
        }
    }

    #[test]
    fn hierarchy_single_leaf() {
        let h = build_hierarchy(&[vec![1.0, 2.0]], |_| 0.9, 2, 4);
        assert_eq!(h.levels.len(), 1);
        assert_eq!(h.levels[0].groups, vec![vec![0]]);
    }

    #[test]
    fn wcss_zero_for_singletons() {
        let v = blobs(3);
        let singles: Vec<Vec<usize>> = (0..v.len()).map(|i| vec![i]).collect();
        assert!(wcss(&v, &singles) < 1e-12);
    }

    #[test]
    fn wcss_smaller_for_true_clusters_than_random() {
        let v = blobs(8);
        let true_groups: Vec<Vec<usize>> = (0..3).map(|b| (b * 8..(b + 1) * 8).collect()).collect();
        let random_groups: Vec<Vec<usize>> = (0..3)
            .map(|r| (0..24).filter(|i| i % 3 == r).collect())
            .collect();
        assert!(wcss(&v, &true_groups) < wcss(&v, &random_groups) * 0.1);
    }

    #[test]
    fn partition_balanced_is_balanced() {
        let v = blobs(20); // 60 items
        let parts = partition_balanced(&v, 6, 2, 42);
        let mut counts = vec![0usize; 6];
        for &p in &parts {
            counts[p] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 60);
        assert!(
            counts.iter().all(|&c| c == 10),
            "parts {counts:?} not balanced"
        );
    }

    #[test]
    fn partition_balanced_respects_semantics() {
        // 3 blobs of 10, 3 parts ⇒ each part should be one blob.
        let v = blobs(10);
        let parts = partition_balanced(&v, 3, 2, 1);
        for b in 0..3 {
            let first = parts[b * 10];
            for i in 0..10 {
                assert_eq!(parts[b * 10 + i], first, "blob {b} split across parts");
            }
        }
    }

    #[test]
    fn optimal_threshold_in_sweep_range() {
        let v = blobs(6);
        let (eps, j) = optimal_threshold(&v, 2, 8, 0.5);
        assert!((0.5..1.0).contains(&eps));
        assert!(j.is_finite());
    }

    #[test]
    fn deterministic_grouping() {
        let v = blobs(6);
        let a = group_level(&v, 0.85, 2, 8);
        let b = group_level(&v, 0.85, 2, 8);
        assert_eq!(a.groups, b.groups);
    }
}
