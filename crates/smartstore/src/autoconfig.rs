//! Automatic configuration of per-attribute-subset semantic R-trees
//! (§2.4).
//!
//! A single R-tree over all D attributes serves queries on any subset,
//! but poorly when the queried subset's geometry diverges from the full
//! space. The paper's remedy: build a semantic R-tree per candidate
//! attribute subset, *keep* it only when its index-unit count differs
//! from the D-dimensional tree's by more than a threshold
//! (`|NO(I_D) − NO(I_d)|` > 10% of `NO(I_D)` in the evaluation —
//! sufficiently different structure to be worth the space), and answer
//! each query from the kept tree whose attributes best match the
//! query's. Queries beyond all kept subsets fall back to the full tree,
//! whose answer is a superset needing refinement.

use crate::config::SmartStoreConfig;
use crate::tree::{SemanticRTree, UnitSummary};
use crate::unit::StorageUnit;
use smartstore_rtree::Rect;
use smartstore_trace::AttributeKind;

/// One retained tree: the subset it indexes and the tree itself.
#[derive(Clone, Debug)]
pub struct ConfiguredTree {
    /// The attribute dimensions this tree indexes (full-order subset of
    /// [`AttributeKind::ALL`]).
    pub dims: Vec<AttributeKind>,
    /// The semantic R-tree over those dimensions.
    pub tree: SemanticRTree,
}

/// The set of semantic R-trees retained by automatic configuration.
#[derive(Clone, Debug)]
pub struct AutoConfig {
    /// The always-present full-dimension tree.
    pub full: ConfiguredTree,
    /// Additional subset trees that passed the difference test.
    pub subsets: Vec<ConfiguredTree>,
    /// Candidate subsets evaluated and rejected (for reporting).
    pub rejected: usize,
}

/// Projects a unit's summary onto a subset of attribute dimensions.
fn project_summary(unit: &StorageUnit, dims: &[AttributeKind]) -> UnitSummary {
    let centroid: Vec<f64> = dims.iter().map(|&k| unit.centroid()[k.index()]).collect();
    let mbr = unit.mbr().map(|m| {
        let lo: Vec<f64> = dims.iter().map(|&k| m.lo()[k.index()]).collect();
        let hi: Vec<f64> = dims.iter().map(|&k| m.hi()[k.index()]).collect();
        Rect::new(lo, hi)
    });
    UnitSummary {
        id: unit.id,
        centroid,
        mbr,
        bloom: unit.bloom().clone(),
    }
}

impl AutoConfig {
    /// Runs the automatic configuration over the given candidate
    /// subsets. The full-dimension tree is always built; a candidate
    /// survives when its index-unit count differs from the full tree's
    /// by more than `cfg.autoconfig_threshold` (fractionally).
    pub fn configure(
        units: &[StorageUnit],
        candidates: &[Vec<AttributeKind>],
        cfg: &SmartStoreConfig,
    ) -> Self {
        let full_tree = SemanticRTree::build(units, cfg);
        let no_full = full_tree.stats().index_units as f64;
        let mut subsets = Vec::new();
        let mut rejected = 0;
        for dims in candidates {
            assert!(
                !dims.is_empty() && dims.len() < AttributeKind::ALL.len(),
                "configure: candidate must be a proper non-empty subset"
            );
            let summaries: Vec<UnitSummary> =
                units.iter().map(|u| project_summary(u, dims)).collect();
            let tree = SemanticRTree::build_from_summaries(&summaries, cfg);
            let no_d = tree.stats().index_units as f64;
            if (no_full - no_d).abs() > cfg.autoconfig_threshold * no_full {
                subsets.push(ConfiguredTree {
                    dims: dims.clone(),
                    tree,
                });
            } else {
                // "Some subsets of available attributes may produce the
                // same or approximate … semantic R-trees and redundant
                // R-trees can be deleted."
                rejected += 1;
            }
        }
        Self {
            full: ConfiguredTree {
                dims: AttributeKind::ALL.to_vec(),
                tree: full_tree,
            },
            subsets,
            rejected,
        }
    }

    /// Selects the tree for a query over `query_dims`: the kept subset
    /// tree with the same or most-overlapping attributes; the full tree
    /// when nothing fits better.
    ///
    /// Returns `(tree, exact_match)` — `exact_match == false` means the
    /// answer may be a superset needing refinement (§2.4's penalty
    /// case).
    pub fn select(&self, query_dims: &[AttributeKind]) -> (&ConfiguredTree, bool) {
        // Exact subset match first.
        for t in &self.subsets {
            if t.dims == query_dims {
                return (t, true);
            }
        }
        // Best overlap among kept trees whose dims cover the query dims.
        let covering = self
            .subsets
            .iter()
            .filter(|t| query_dims.iter().all(|d| t.dims.contains(d)))
            .min_by_key(|t| t.dims.len());
        match covering {
            Some(t) => (t, false),
            None => (&self.full, query_dims.len() == AttributeKind::ALL.len()),
        }
    }

    /// Total trees kept (full + subsets).
    pub fn tree_count(&self) -> usize {
        1 + self.subsets.len()
    }

    /// Aggregate index bytes across all kept trees — the storage-space
    /// side of the §2.4 tradeoff.
    pub fn total_index_bytes(&self) -> usize {
        self.full.tree.index_size_bytes()
            + self
                .subsets
                .iter()
                .map(|t| t.tree.index_size_bytes())
                .sum::<usize>()
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use crate::grouping::partition_balanced_flat;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn units(n_units: usize) -> Vec<StorageUnit> {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: n_units * 30,
            n_clusters: n_units,
            seed: 41,
            ..GeneratorConfig::default()
        });
        let table = smartstore_trace::attr_table(&pop.files);
        let assignment =
            partition_balanced_flat(&table, smartstore_trace::ATTR_DIMS, n_units, 3, 41);
        let mut buckets: Vec<Vec<smartstore_trace::FileMetadata>> = vec![Vec::new(); n_units];
        for (f, &a) in pop.files.into_iter().zip(assignment.iter()) {
            buckets[a].push(f);
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, files)| StorageUnit::new(i, 1024, 7, files))
            .collect()
    }

    fn some_candidates() -> Vec<Vec<AttributeKind>> {
        vec![
            vec![AttributeKind::Size],
            vec![AttributeKind::Size, AttributeKind::CreationTime],
            vec![
                AttributeKind::ModificationTime,
                AttributeKind::ReadBytes,
                AttributeKind::WriteBytes,
            ],
        ]
    }

    #[test]
    fn full_tree_always_present() {
        let us = units(20);
        let ac = AutoConfig::configure(&us, &some_candidates(), &SmartStoreConfig::default());
        assert_eq!(ac.full.dims.len(), AttributeKind::ALL.len());
        ac.full.tree.check_invariants().unwrap();
        assert_eq!(ac.tree_count(), 1 + ac.subsets.len());
        assert_eq!(ac.subsets.len() + ac.rejected, 3);
    }

    #[test]
    fn kept_subset_trees_are_valid() {
        let us = units(20);
        let ac = AutoConfig::configure(&us, &some_candidates(), &SmartStoreConfig::default());
        for t in &ac.subsets {
            t.tree.check_invariants().unwrap();
            assert_eq!(
                t.tree.node(t.tree.root()).centroid.len(),
                t.dims.len(),
                "subset tree dimensionality"
            );
        }
    }

    #[test]
    fn select_prefers_exact_match() {
        let us = units(16);
        // Force all candidates to be kept so selection is deterministic.
        let cfg = SmartStoreConfig {
            autoconfig_threshold: -1.0,
            ..Default::default()
        };
        let ac = AutoConfig::configure(&us, &some_candidates(), &cfg);
        assert_eq!(ac.subsets.len(), 3);
        let q = vec![AttributeKind::Size, AttributeKind::CreationTime];
        let (t, exact) = ac.select(&q);
        assert!(exact);
        assert_eq!(t.dims, q);
    }

    #[test]
    fn select_falls_back_to_full_tree() {
        let us = units(16);
        let ac = AutoConfig::configure(&us, &[], &SmartStoreConfig::default());
        let q = vec![AttributeKind::ProcessId];
        let (t, exact) = ac.select(&q);
        assert_eq!(t.dims.len(), AttributeKind::ALL.len());
        assert!(!exact, "full tree over a 1-dim query is a superset answer");
    }

    #[test]
    fn select_uses_covering_subset() {
        let us = units(16);
        let cfg = SmartStoreConfig {
            autoconfig_threshold: -1.0,
            ..Default::default()
        };
        let ac = AutoConfig::configure(&us, &some_candidates(), &cfg);
        // Query on (Size) alone: candidate [Size] covers it exactly.
        let (t, exact) = ac.select(&[AttributeKind::Size]);
        assert!(exact);
        assert_eq!(t.dims, vec![AttributeKind::Size]);
        // Query on (ModificationTime, ReadBytes): covered by the 3-dim candidate.
        let (t2, exact2) = ac.select(&[AttributeKind::ModificationTime, AttributeKind::ReadBytes]);
        assert!(!exact2);
        assert_eq!(t2.dims.len(), 3);
    }

    #[test]
    fn threshold_controls_retention() {
        let us = units(20);
        let keep_all = SmartStoreConfig {
            autoconfig_threshold: -1.0,
            ..Default::default()
        };
        let keep_none = SmartStoreConfig {
            autoconfig_threshold: 1e9,
            ..Default::default()
        };
        let all = AutoConfig::configure(&us, &some_candidates(), &keep_all);
        let none = AutoConfig::configure(&us, &some_candidates(), &keep_none);
        assert_eq!(all.subsets.len(), 3);
        assert_eq!(none.subsets.len(), 0);
        assert!(all.total_index_bytes() > none.total_index_bytes());
    }

    #[test]
    #[should_panic]
    fn full_set_candidate_rejected() {
        let us = units(8);
        AutoConfig::configure(
            &us,
            &[AttributeKind::ALL.to_vec()],
            &SmartStoreConfig::default(),
        );
    }
}
