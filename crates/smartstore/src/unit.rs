//! Storage units — the leaf nodes of the semantic R-tree.
//!
//! "Each metadata server is a leaf node in our semantic R-tree … we
//! refer to the semantic R-tree leaf nodes as storage units" (§2.3).
//! A storage unit holds the metadata of its files, a Bloom filter over
//! their filenames, the unit's semantic vector (attribute centroid) and
//! its MBR in attribute space.
//!
//! # Columnar read path
//!
//! Queries never walk the record structs. Alongside the row store
//! (`files`), every unit maintains a *columnar projection*:
//!
//! * `coords` — a flat row-major `n × ATTR_DIMS` table; row `i` is
//!   `files[i].attr_vector()`, computed **once** at mutation time
//!   instead of on every scan (the projection does four `ln()` calls
//!   per record — recomputing it per query made scans
//!   transcendental-bound, not memory-bound);
//! * `ids` — the `file_id` column, so a scan touches the (large,
//!   string-carrying) records only for actual hits;
//! * `name_slots` — filename → slot positions, so a point lookup behind
//!   the Bloom probe is a hash probe instead of a prefix scan.
//!
//! The projection is *derived state*: it is maintained by every
//! mutation path and rebuilt deterministically from `files` in
//! [`StorageUnit::from_parts`], so persisted snapshot images carry no
//! trace of it and need no format change. Scan results are
//! bit-identical to the pre-columnar record walk because `attr_vector`
//! is a pure function of the record and the scan visits rows in the
//! same order.

use smartstore_bloom::{BloomFilter, HashFamily};
use smartstore_rtree::Rect;
use smartstore_trace::{FileMetadata, ATTR_DIMS};
use std::collections::HashMap;

/// How many rows a range scan processes per mask pass. Small enough
/// for the mask to live in registers/L1, large enough that the
/// per-dimension inner loops are straight-line code the compiler can
/// unroll and vectorize.
const SCAN_CHUNK: usize = 64;

/// Conservative per-dimension bounds of the columnar coordinate table.
///
/// Invariant: every value in column `d` lies in `[lo[d], hi[d]]` (NaN
/// values poison the dimension to an un-coverable `NaN` bound). The
/// bounds are grow-only supersets under in-place mutation and exact
/// after a rebuild — unlike the unit MBR they are *never stale*, so a
/// range scan may skip checking any dimension whose query interval
/// covers them without changing a single answer.
#[derive(Clone, Copy, Debug)]
struct ColBounds {
    lo: [f64; ATTR_DIMS],
    hi: [f64; ATTR_DIMS],
}

impl ColBounds {
    fn empty() -> Self {
        Self {
            lo: [f64::INFINITY; ATTR_DIMS],
            hi: [f64::NEG_INFINITY; ATTR_DIMS],
        }
    }

    /// Widens the bounds to cover one coordinate row.
    fn grow(&mut self, row: &[f64]) {
        for (d, &x) in row.iter().enumerate().take(ATTR_DIMS) {
            if self.lo[d].is_nan() {
                continue; // already poisoned — stays un-coverable
            }
            if x.is_nan() {
                // A NaN coordinate fails every interval check, so the
                // dimension must never be skipped: poison the bounds so
                // no query interval can cover them.
                self.lo[d] = f64::NAN;
                self.hi[d] = f64::NAN;
            } else {
                if x < self.lo[d] {
                    self.lo[d] = x;
                }
                if x > self.hi[d] {
                    self.hi[d] = x;
                }
            }
        }
    }
}

/// Work performed by a local query, for latency accounting.
///
/// Cost-accounting rule for `records`: scan-evaluated queries (range,
/// top-k) examine every record of the unit; the *indexed* point lookup
/// examines exactly one record on a hit and none on a miss — the
/// name→slot map resolves the filename behind the Bloom probe, so a
/// Bloom false positive costs a hash probe, not a prefix scan.
/// [`crate::routing::point_query_cost`] prices records under the same
/// rule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalWork {
    /// Metadata records examined.
    pub records: usize,
    /// Bloom filters probed.
    pub filters: usize,
}

/// Bounded top-k accumulator over `(file_id, squared distance)` pairs:
/// a max-heap of the k best seen so far, ordered by `(distance, id)`
/// under `f64::total_cmp` (no panic path on NaN). O(log k) per
/// candidate instead of the O(n log n) full sort, and
/// [`TopK::into_sorted`] yields exactly what
/// `sort_by((distance, id)) + truncate(k)` over all pushed candidates
/// would.
#[derive(Clone, Debug)]
pub(crate) struct TopK {
    k: usize,
    heap: std::collections::BinaryHeap<ScoredId>,
}

#[derive(Clone, Copy, Debug)]
struct ScoredId {
    d: f64,
    id: u64,
}

impl PartialEq for ScoredId {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for ScoredId {}

impl Ord for ScoredId {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.d.total_cmp(&other.d).then(self.id.cmp(&other.id))
    }
}

impl PartialOrd for ScoredId {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl TopK {
    pub(crate) fn new(k: usize) -> Self {
        Self {
            k,
            heap: std::collections::BinaryHeap::with_capacity(k.min(1 << 12) + 1),
        }
    }

    /// The current k-th best distance — the MaxD pruning bound of
    /// §3.3.2. Infinite until k candidates are retained.
    pub(crate) fn max_d(&self) -> f64 {
        if self.heap.len() == self.k {
            self.heap.peek().map_or(f64::INFINITY, |e| e.d)
        } else {
            f64::INFINITY
        }
    }

    /// Offers one candidate.
    pub(crate) fn push(&mut self, id: u64, d: f64) {
        if self.k == 0 {
            return;
        }
        let entry = ScoredId { d, id };
        if self.heap.len() < self.k {
            self.heap.push(entry);
        } else if let Some(worst) = self.heap.peek() {
            if entry < *worst {
                self.heap.pop();
                self.heap.push(entry);
            }
        }
    }

    /// The retained candidates in ascending `(distance, id)` order.
    pub(crate) fn into_sorted(self) -> Vec<(u64, f64)> {
        self.heap
            .into_sorted_vec()
            .into_iter()
            .map(|e| (e.id, e.d))
            .collect()
    }
}

/// Appends one row to the columnar projection: coordinate row, id, and
/// the name→slot entry for the next slot (`ids.len()`). Free-standing
/// over the three columns so callers iterating `files` can borrow it
/// disjointly; the single append path shared by the insert, rebuild
/// and compaction sites.
fn push_row(
    coords: &mut Vec<f64>,
    ids: &mut Vec<u64>,
    name_slots: &mut HashMap<String, Vec<usize>>,
    bounds: &mut ColBounds,
    row: &[f64],
    id: u64,
    name: &str,
) {
    let slot = ids.len();
    coords.extend_from_slice(row);
    ids.push(id);
    bounds.grow(row);
    name_slots.entry(name.to_owned()).or_default().push(slot);
}

/// Unlinks `slot` from `name`'s slot list, dropping the entry when it
/// empties — shared by the removal and rename paths.
fn unlink_name_slot(name_slots: &mut HashMap<String, Vec<usize>>, name: &str, slot: usize) {
    let drop_entry = match name_slots.get_mut(name) {
        Some(slots) => {
            slots.retain(|&s| s != slot);
            slots.is_empty()
        }
        None => false,
    };
    if drop_entry {
        name_slots.remove(name);
    }
}

/// One metadata server's local state.
#[derive(Clone, Debug)]
pub struct StorageUnit {
    /// Stable unit id (also its simulator node id).
    pub id: usize,
    files: Vec<FileMetadata>,
    bloom: BloomFilter,
    centroid: Vec<f64>,
    mbr: Option<Rect>,
    /// Columnar projection: flat row-major `n × ATTR_DIMS` attribute
    /// table; row `i` is `files[i].attr_vector()`.
    coords: Vec<f64>,
    /// `file_id` column; `ids[i] == files[i].file_id`.
    ids: Vec<u64>,
    /// filename → slots holding a file of that name, ascending (point
    /// queries resolve to the first slot, matching the pre-columnar
    /// first-match-in-store-order scan).
    name_slots: HashMap<String, Vec<usize>>,
    /// Conservative per-dimension bounds over `coords` (see
    /// [`ColBounds`]); drives dimension pruning in range scans.
    bounds: ColBounds,
}

impl StorageUnit {
    /// Creates a unit with the given Bloom geometry and initial files,
    /// in the default hash family.
    pub fn new(
        id: usize,
        bloom_bits: usize,
        bloom_hashes: usize,
        files: Vec<FileMetadata>,
    ) -> Self {
        Self::with_family(id, bloom_bits, bloom_hashes, HashFamily::default(), files)
    }

    /// Creates a unit whose Bloom filter uses an explicit hash family.
    pub fn with_family(
        id: usize,
        bloom_bits: usize,
        bloom_hashes: usize,
        family: HashFamily,
        files: Vec<FileMetadata>,
    ) -> Self {
        let mut unit = Self {
            id,
            files: Vec::new(),
            bloom: BloomFilter::with_family(bloom_bits, bloom_hashes, family),
            centroid: vec![0.0; ATTR_DIMS],
            mbr: None,
            coords: Vec::new(),
            ids: Vec::new(),
            name_slots: HashMap::new(),
            bounds: ColBounds::empty(),
        };
        for f in files {
            unit.insert_file(f);
        }
        unit
    }

    /// Reassembles a unit from serialized state *without* recomputing
    /// summaries: a persisted unit must come back with exactly the
    /// (possibly stale) Bloom filter, centroid and MBR it was saved
    /// with, so that queries against the reopened system answer
    /// identically to the live one. The columnar projection is derived
    /// purely from `files`, so it is rebuilt here deterministically —
    /// persisted images carry no columnar section.
    pub fn from_parts(
        id: usize,
        files: Vec<FileMetadata>,
        bloom: BloomFilter,
        centroid: Vec<f64>,
        mbr: Option<Rect>,
    ) -> Self {
        assert_eq!(centroid.len(), ATTR_DIMS, "from_parts: centroid dims");
        let mut unit = Self {
            id,
            files,
            bloom,
            centroid,
            mbr,
            coords: Vec::new(),
            ids: Vec::new(),
            name_slots: HashMap::new(),
            bounds: ColBounds::empty(),
        };
        unit.rebuild_columns();
        unit
    }

    /// Rebuilds the derived columnar projection from `files`.
    fn rebuild_columns(&mut self) {
        self.coords.clear();
        self.coords.reserve(self.files.len() * ATTR_DIMS);
        self.ids.clear();
        self.ids.reserve(self.files.len());
        self.name_slots.clear();
        self.bounds = ColBounds::empty();
        for f in &self.files {
            push_row(
                &mut self.coords,
                &mut self.ids,
                &mut self.name_slots,
                &mut self.bounds,
                &f.attr_vector(),
                f.file_id,
                &f.name,
            );
        }
    }

    /// Appends a file's columnar projection (call immediately before
    /// pushing the record onto `files`).
    fn append_columns(&mut self, file: &FileMetadata) {
        push_row(
            &mut self.coords,
            &mut self.ids,
            &mut self.name_slots,
            &mut self.bounds,
            &file.attr_vector(),
            file.file_id,
            &file.name,
        );
    }

    /// Drops slot `pos` from the columnar projection, shifting later
    /// slots down by one (call *before* `files.remove(pos)`, while the
    /// record is still present). O(n), matching the `Vec::remove`
    /// memmove it accompanies; store order is preserved so summary
    /// recomputation stays bit-identical to the pre-columnar path.
    fn remove_column_slot(&mut self, pos: usize) {
        unlink_name_slot(&mut self.name_slots, &self.files[pos].name, pos);
        self.coords.drain(pos * ATTR_DIMS..(pos + 1) * ATTR_DIMS);
        self.ids.remove(pos);
        // lint:allow(D002) -- each slot list is shifted independently; order-insensitive
        for slots in self.name_slots.values_mut() {
            for s in slots.iter_mut() {
                if *s > pos {
                    *s -= 1;
                }
            }
        }
    }

    /// Number of files stored.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the unit holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The unit's files.
    pub fn files(&self) -> &[FileMetadata] {
        &self.files
    }

    /// The unit's filename Bloom filter.
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// The unit's semantic vector: the centroid of its files' attribute
    /// vectors ("Each node can be summarized by a geometric centroid of
    /// all metadata it represents", §3.1.1).
    pub fn centroid(&self) -> &[f64] {
        &self.centroid
    }

    /// The unit's MBR in attribute space, `None` when empty.
    pub fn mbr(&self) -> Option<&Rect> {
        self.mbr.as_ref()
    }

    /// The flat row-major `n × ATTR_DIMS` columnar attribute table;
    /// row `i` equals `files()[i].attr_vector()` bit-for-bit.
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The `file_id` column; `file_ids()[i] == files()[i].file_id`.
    pub fn file_ids(&self) -> &[u64] {
        &self.ids
    }

    /// Verifies the columnar projection against a from-scratch rebuild
    /// from `files` (test/diagnostic hook; the coherence proptest
    /// drives this under arbitrary mutation streams).
    pub fn check_columnar_coherence(&self) -> Result<(), String> {
        if self.coords.len() != self.files.len() * ATTR_DIMS {
            return Err(format!(
                "coords holds {} values for {} files",
                self.coords.len(),
                self.files.len()
            ));
        }
        if self.ids.len() != self.files.len() {
            return Err(format!(
                "ids holds {} entries for {} files",
                self.ids.len(),
                self.files.len()
            ));
        }
        let mut expected_slots: HashMap<&str, Vec<usize>> = HashMap::new();
        for (slot, f) in self.files.iter().enumerate() {
            if self.ids[slot] != f.file_id {
                return Err(format!(
                    "ids[{slot}] = {} but files[{slot}].file_id = {}",
                    self.ids[slot], f.file_id
                ));
            }
            let row = &self.coords[slot * ATTR_DIMS..(slot + 1) * ATTR_DIMS];
            let v = f.attr_vector();
            if row
                .iter()
                .zip(v.iter())
                .any(|(a, b)| a.to_bits() != b.to_bits())
            {
                return Err(format!("coords row {slot} diverges from attr_vector"));
            }
            expected_slots.entry(&f.name).or_default().push(slot);
        }
        if self.name_slots.len() != expected_slots.len() {
            return Err(format!(
                "name_slots holds {} names, files hold {}",
                self.name_slots.len(),
                expected_slots.len()
            ));
        }
        // lint:allow(D002) -- invariant check; only which corruption is reported first varies
        for (name, slots) in &expected_slots {
            match self.name_slots.get(*name) {
                Some(got) if got == slots => {}
                Some(got) => {
                    return Err(format!("name {name:?}: slots {got:?}, expected {slots:?}"))
                }
                None => return Err(format!("name {name:?} missing from name_slots")),
            }
        }
        Ok(())
    }

    /// Adds a file, updating Bloom filter, centroid, MBR and the
    /// columnar projection.
    pub fn insert_file(&mut self, file: FileMetadata) {
        self.bloom.insert(file.name.as_bytes());
        let v = file.attr_vector();
        let n = self.files.len() as f64;
        for (c, &x) in self.centroid.iter_mut().zip(v.iter()) {
            *c = (*c * n + x) / (n + 1.0);
        }
        let point = Rect::point(&v);
        self.mbr = Some(match self.mbr.take() {
            Some(m) => m.union(&point),
            None => point,
        });
        push_row(
            &mut self.coords,
            &mut self.ids,
            &mut self.name_slots,
            &mut self.bounds,
            &v,
            file.file_id,
            &file.name,
        );
        self.files.push(file);
    }

    /// Removes a file by id. The Bloom filter keeps the stale name (a
    /// standard Bloom limitation; the paper accepts "false positives and
    /// false negatives … identified when the target metadata is
    /// accessed", §5.4.1); the centroid and MBR are recomputed.
    pub fn remove_file(&mut self, file_id: u64) -> Option<FileMetadata> {
        let removed = self.remove_file_raw(file_id)?;
        self.recompute_summaries();
        Some(removed)
    }

    /// Removes a batch of files by id with a *single* order-preserving
    /// compaction pass and one summary recompute — the bulk form of
    /// [`Self::remove_file`], whose per-file `Vec::remove` +
    /// `recompute_summaries` is O(n) each, O(n·m) for m removals.
    /// Returns the removed records in store order; ids not present are
    /// ignored. The final state is bit-identical to one
    /// [`Self::remove_file`] call per listed id — the list is a
    /// *multiset*, so an id listed m times removes the first m
    /// occurrences in store order (duplicate ids can exist —
    /// [`Self::insert_file_raw`] does not dedupe).
    pub fn remove_files(&mut self, file_ids: &[u64]) -> Vec<FileMetadata> {
        if file_ids.is_empty() {
            return Vec::new();
        }
        // Multiset of pending removals: an id listed twice removes two
        // occurrences, exactly like two remove_file calls would.
        let mut victims: HashMap<u64, usize> = HashMap::new();
        for &id in file_ids {
            *victims.entry(id).or_insert(0) += 1;
        }
        let old_files = std::mem::take(&mut self.files);
        let old_coords = std::mem::take(&mut self.coords);
        let old_ids = std::mem::take(&mut self.ids);
        self.name_slots.clear();
        self.bounds = ColBounds::empty();
        self.files = Vec::with_capacity(old_files.len());
        self.coords = Vec::with_capacity(old_coords.len());
        self.ids = Vec::with_capacity(old_ids.len());
        let mut removed = Vec::new();
        for (row, f) in old_files.into_iter().enumerate() {
            let take = match victims.get_mut(&old_ids[row]) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            };
            if take {
                removed.push(f);
            } else {
                push_row(
                    &mut self.coords,
                    &mut self.ids,
                    &mut self.name_slots,
                    &mut self.bounds,
                    &old_coords[row * ATTR_DIMS..(row + 1) * ATTR_DIMS],
                    old_ids[row],
                    &f.name,
                );
                self.files.push(f);
            }
        }
        self.recompute_summaries();
        removed
    }

    /// Adds a file *without* refreshing the unit's summaries — the
    /// change stream mutates data immediately while index summaries
    /// (Bloom/centroid/MBR) stay stale until a lazy update
    /// ([`Self::recompute_summaries`]) fires, per §3.4/§4.4. The
    /// columnar projection (data, not index) is maintained eagerly.
    pub fn insert_file_raw(&mut self, file: FileMetadata) {
        self.append_columns(&file);
        self.files.push(file);
    }

    /// Removes a file by id without refreshing summaries.
    pub fn remove_file_raw(&mut self, file_id: u64) -> Option<FileMetadata> {
        let pos = self.files.iter().position(|f| f.file_id == file_id)?;
        self.remove_column_slot(pos);
        Some(self.files.remove(pos))
    }

    /// Replaces a file's metadata in place without refreshing summaries;
    /// inserts if absent.
    pub fn modify_file_raw(&mut self, file: FileMetadata) {
        match self.files.iter().position(|f| f.file_id == file.file_id) {
            Some(slot) => {
                let row = file.attr_vector();
                self.coords[slot * ATTR_DIMS..(slot + 1) * ATTR_DIMS].copy_from_slice(&row);
                // The old row's extent is kept (bounds stay a superset).
                self.bounds.grow(&row);
                if self.files[slot].name != file.name {
                    unlink_name_slot(&mut self.name_slots, &self.files[slot].name, slot);
                    let slots = self.name_slots.entry(file.name.clone()).or_default();
                    let at = slots.partition_point(|&s| s < slot);
                    slots.insert(at, slot);
                }
                self.files[slot] = file;
            }
            None => self.insert_file_raw(file),
        }
    }

    /// Rebuilds centroid, MBR and Bloom filter from current contents
    /// (used after bulk changes and version flushes). Reads the
    /// columnar table instead of re-projecting every record — same
    /// values summed in the same store order, so the recomputed
    /// summaries are bit-identical to the pre-columnar walk.
    pub fn recompute_summaries(&mut self) {
        let n = self.files.len();
        self.centroid = vec![0.0; ATTR_DIMS];
        self.mbr = None;
        self.bloom.clear();
        if n == 0 {
            return;
        }
        for row in self.coords.chunks_exact(ATTR_DIMS) {
            for (c, &x) in self.centroid.iter_mut().zip(row) {
                *c += x;
            }
            let p = Rect::point(row);
            self.mbr = Some(match self.mbr.take() {
                Some(m) => m.union(&p),
                None => p,
            });
        }
        for c in &mut self.centroid {
            *c /= n as f64;
        }
        for f in &self.files {
            self.bloom.insert(f.name.as_bytes());
        }
    }

    /// Rebuilds the Bloom filter alone, in the given hash family, from
    /// the unit's current file names — the persisted-image migration
    /// path (`name_slots` already proves names are authoritative).
    /// Centroid and MBR are deliberately untouched: they may be stale,
    /// and staleness is answer-relevant (§3.4), so migration must not
    /// refresh them.
    pub fn rebuild_bloom(&mut self, family: HashFamily) {
        let mut bloom =
            BloomFilter::with_family(self.bloom.n_bits(), self.bloom.n_hashes(), family);
        for f in &self.files {
            bloom.insert(f.name.as_bytes());
        }
        self.bloom = bloom;
    }

    /// Local point query: probe the Bloom filter, and on a positive hit
    /// resolve the filename through the name→slot index — one record
    /// examined on a hit, none on a Bloom false positive (see
    /// [`LocalWork`] for the cost-accounting rule). With duplicate
    /// names the first slot in store order answers, matching the
    /// pre-columnar prefix scan.
    pub fn point_query(&self, name: &str) -> (Option<&FileMetadata>, LocalWork) {
        let mut work = LocalWork {
            records: 0,
            filters: 1,
        };
        if !self.bloom.contains(name.as_bytes()) {
            return (None, work);
        }
        match self.lookup_name(name) {
            Some(f) => {
                work.records = 1;
                (Some(f), work)
            }
            None => (None, work),
        }
    }

    /// Resolves an exact filename through the name→slot index, skipping
    /// the Bloom probe — the raw indexed lookup behind
    /// [`Self::point_query`]. With duplicate names the first slot in
    /// store order answers.
    pub fn lookup_name(&self, name: &str) -> Option<&FileMetadata> {
        self.name_slots
            .get(name)
            .and_then(|slots| slots.first())
            .map(|&slot| &self.files[slot])
    }

    /// Local range query over the projected attribute space:
    /// dimension-pruned, chunk-processed passes over the flat
    /// coordinate table (no per-record projection, records touched only
    /// through the id column).
    ///
    /// Two layers of work avoidance, both answer-preserving:
    ///
    /// * **dimension pruning** — a dimension whose query interval
    ///   covers the column's [`ColBounds`] cannot reject any row, so
    ///   its column is never read (the bounds are conservative
    ///   supersets of the column values, unlike the possibly-stale unit
    ///   MBR);
    /// * **chunked mask scan** — the remaining dimensions are evaluated
    ///   column-at-a-time over [`SCAN_CHUNK`]-row blocks: each pass is
    ///   a branch-free strided sweep the compiler can vectorize, and a
    ///   chunk whose mask empties skips its remaining dimensions.
    ///
    /// Output order (ascending slot) and the full-scan cost accounting
    /// (`records = len()`, pricing the guaranteed column pass) are
    /// unchanged, so answers and cost-model decisions stay bit-identical
    /// to the plain row walk.
    pub fn range_query(&self, lo: &[f64], hi: &[f64]) -> (Vec<u64>, LocalWork) {
        let mut out = Vec::new();
        let mut work = LocalWork::default();
        // MBR pre-check: disjoint units do no record work.
        if let Some(m) = &self.mbr {
            let q = Rect::new(lo.to_vec(), hi.to_vec());
            if !m.intersects(&q) {
                return (out, work);
            }
        }
        // The row walk this replaces zipped `lo`/`hi` against each row,
        // so only the first `min(lo, hi, ATTR_DIMS)` dimensions ever
        // constrained; dims beyond that stay unconstrained here too.
        let checked_dims = lo.len().min(hi.len()).min(ATTR_DIMS);
        let mut active = [false; ATTR_DIMS];
        let mut n_active = 0usize;
        for d in 0..checked_dims {
            // `!(covers)` rather than `excludes`: a NaN query bound or
            // poisoned column bound must keep the dimension active.
            let covers = lo[d] <= self.bounds.lo[d] && self.bounds.hi[d] <= hi[d];
            if !covers {
                active[d] = true;
                n_active += 1;
            }
        }
        let n = self.ids.len();
        if n_active == 0 {
            // Every surviving dimension is covered: all rows match.
            out.extend_from_slice(&self.ids);
            work.records = self.files.len();
            return (out, work);
        }
        let mut mask = [false; SCAN_CHUNK];
        let mut base = 0usize;
        while base < n {
            let len = SCAN_CHUNK.min(n - base);
            mask[..len].fill(true);
            let mut any = true;
            for d in 0..checked_dims {
                if !active[d] {
                    continue;
                }
                let (l, h) = (lo[d], hi[d]);
                let mut keep_any = false;
                for (j, m) in mask.iter_mut().enumerate().take(len) {
                    let x = self.coords[(base + j) * ATTR_DIMS + d];
                    *m = *m && l <= x && x <= h;
                    keep_any |= *m;
                }
                if !keep_any {
                    any = false;
                    break; // chunk fully rejected — skip remaining dims
                }
            }
            if any {
                for (j, &m) in mask.iter().enumerate().take(len) {
                    if m {
                        out.push(self.ids[base + j]);
                    }
                }
            }
            base += len;
        }
        work.records = self.files.len();
        (out, work)
    }

    /// Local top-k: the unit's k nearest files to `point`, with squared
    /// distances (for cross-unit merge). A bounded-heap pass over the
    /// coordinate table — O(n log k) instead of the previous full
    /// O(n log n) sort, `total_cmp` ordered (no NaN panic path), and
    /// bit-identical to sort-then-truncate output.
    pub fn topk_query(&self, point: &[f64], k: usize) -> (Vec<(u64, f64)>, LocalWork) {
        let mut top = TopK::new(k);
        for (slot, row) in self.coords.chunks_exact(ATTR_DIMS).enumerate() {
            let mut d = 0.0;
            for (&a, &q) in row.iter().zip(point) {
                d += (a - q) * (a - q);
            }
            // Full (distance, id) comparison inside push — an equal
            // distance with a smaller id still displaces the worst.
            top.push(self.ids[slot], d);
        }
        let work = LocalWork {
            records: self.files.len(),
            filters: 0,
        };
        (top.into_sorted(), work)
    }

    /// Approximate resident bytes of the unit's index state (Bloom
    /// filter + centroid + MBR), excluding the metadata records
    /// themselves — the quantity Fig. 7 compares across systems. The
    /// columnar projection is a scan acceleration of the *data*, not
    /// part of the paper's index-size comparison, so it is excluded
    /// like the records it mirrors.
    pub fn index_size_bytes(&self) -> usize {
        self.bloom.size_bytes() + ATTR_DIMS * 8 * 3
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn unit_with(n: usize) -> StorageUnit {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: n,
            n_clusters: 3,
            seed: 5,
            ..GeneratorConfig::default()
        });
        StorageUnit::new(0, 1024, 7, pop.files)
    }

    #[test]
    fn centroid_is_mean_of_vectors() {
        let u = unit_with(50);
        let mut mean = vec![0.0; ATTR_DIMS];
        for f in u.files() {
            for (m, v) in mean.iter_mut().zip(f.attr_vector()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= 50.0;
        }
        for (a, b) in u.centroid().iter().zip(&mean) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn mbr_contains_every_file_vector() {
        let u = unit_with(80);
        let mbr = u.mbr().unwrap();
        for f in u.files() {
            assert!(mbr.contains_point(&f.attr_vector()));
        }
    }

    #[test]
    fn point_query_hits_own_files() {
        let u = unit_with(30);
        let name = u.files()[17].name.clone();
        let (hit, work) = u.point_query(&name);
        assert_eq!(hit.unwrap().name, name);
        assert_eq!(work.filters, 1);
        assert!(work.records >= 1);
    }

    #[test]
    fn point_query_misses_cheaply_via_bloom() {
        let u = unit_with(30);
        let (hit, work) = u.point_query("definitely_not_here_123456");
        assert!(hit.is_none());
        // With overwhelming probability the Bloom filter prunes the scan.
        assert_eq!(work.records, 0, "bloom should prune the record scan");
    }

    #[test]
    fn range_query_matches_filter() {
        let u = unit_with(100);
        let (lo, hi) = {
            let m = u.mbr().unwrap();
            (m.lo().to_vec(), m.hi().to_vec())
        };
        let (all, _) = u.range_query(&lo, &hi);
        assert_eq!(all.len(), 100, "whole-domain range returns everything");
        // Disjoint query does zero record work.
        let far_lo: Vec<f64> = hi.iter().map(|&x| x + 100.0).collect();
        let far_hi: Vec<f64> = hi.iter().map(|&x| x + 200.0).collect();
        let (none, work) = u.range_query(&far_lo, &far_hi);
        assert!(none.is_empty());
        assert_eq!(work.records, 0);
    }

    #[test]
    fn topk_returns_sorted_k() {
        let u = unit_with(60);
        let q = u.files()[10].attr_vector();
        let (top, work) = u.topk_query(&q, 5);
        assert_eq!(top.len(), 5);
        assert_eq!(work.records, 60);
        assert_eq!(
            top[0].0,
            u.files()[10].file_id,
            "query at a file finds it first"
        );
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut u = unit_with(10);
        let extra = {
            let mut f = u.files()[0].clone();
            f.file_id = 9999;
            f.name = "extra_file".into();
            f
        };
        u.insert_file(extra);
        assert_eq!(u.len(), 11);
        assert!(u.point_query("extra_file").0.is_some());
        let removed = u.remove_file(9999).unwrap();
        assert_eq!(removed.name, "extra_file");
        assert_eq!(u.len(), 10);
        assert!(u.point_query("extra_file").0.is_none());
    }

    #[test]
    fn empty_unit_behaviour() {
        let u = StorageUnit::new(3, 128, 3, vec![]);
        assert!(u.is_empty());
        assert!(u.mbr().is_none());
        let (r, _) = u.range_query(&[0.0; ATTR_DIMS], &[1.0; ATTR_DIMS]);
        assert!(r.is_empty());
        let (t, _) = u.topk_query(&[0.0; ATTR_DIMS], 4);
        assert!(t.is_empty());
    }

    #[test]
    fn recompute_after_bulk_mutation() {
        let mut u = unit_with(20);
        let before_mbr = u.mbr().unwrap().clone();
        // Remove half the files in one compaction pass.
        let ids: Vec<u64> = u.files()[..10].iter().map(|f| f.file_id).collect();
        let removed = u.remove_files(&ids);
        assert_eq!(removed.len(), 10);
        assert_eq!(u.len(), 10);
        let after = u.mbr().unwrap();
        assert!(
            before_mbr.contains_rect(after),
            "MBR must tighten, not grow"
        );
    }

    #[test]
    fn remove_files_matches_sequential_removal() {
        let mut bulk = unit_with(40);
        let mut seq = bulk.clone();
        // Every third file plus an unknown id (ignored by both paths).
        let mut ids: Vec<u64> = bulk.files().iter().step_by(3).map(|f| f.file_id).collect();
        ids.push(u64::MAX);
        let removed = bulk.remove_files(&ids);
        for &id in &ids {
            seq.remove_file(id);
        }
        assert_eq!(removed.len(), ids.len() - 1);
        assert_eq!(bulk.files(), seq.files(), "store order must match");
        assert_eq!(bulk.centroid(), seq.centroid());
        assert_eq!(bulk.mbr(), seq.mbr());
        assert_eq!(bulk.bloom().words(), seq.bloom().words());
        bulk.check_columnar_coherence().unwrap();
    }

    #[test]
    fn remove_files_honors_id_multiplicity() {
        // insert_file_raw does not dedupe ids; the removal list is a
        // multiset, so listing an id once removes one occurrence and
        // listing it twice removes both — exactly like the same number
        // of remove_file calls.
        let mut bulk = unit_with(6);
        let mut dup = bulk.files()[1].clone();
        dup.name = "dup_copy".into();
        bulk.insert_file_raw(dup);
        let target = bulk.files()[1].file_id;

        let mut seq = bulk.clone();
        let mut twice = bulk.clone();
        let removed = bulk.remove_files(&[target]);
        seq.remove_file(target);
        assert_eq!(removed.len(), 1);
        assert_eq!(bulk.files(), seq.files());
        assert_eq!(bulk.len(), 6, "the duplicate survives a single listing");
        bulk.check_columnar_coherence().unwrap();

        let removed = twice.remove_files(&[target, target]);
        seq.remove_file(target);
        assert_eq!(removed.len(), 2);
        assert_eq!(twice.files(), seq.files());
        assert_eq!(twice.len(), 5, "a double listing removes both");
        twice.check_columnar_coherence().unwrap();
    }

    #[test]
    fn columnar_projection_mirrors_files() {
        let mut u = unit_with(25);
        u.check_columnar_coherence().unwrap();
        assert_eq!(u.coords().len(), 25 * ATTR_DIMS);
        for (i, f) in u.files().iter().enumerate() {
            assert_eq!(u.file_ids()[i], f.file_id);
            assert_eq!(
                &u.coords()[i * ATTR_DIMS..(i + 1) * ATTR_DIMS],
                f.attr_vector().as_slice()
            );
        }
        // Stays coherent through raw mutations and a rename.
        let mut extra = u.files()[0].clone();
        extra.file_id = 777;
        extra.name = "renamable".into();
        u.insert_file_raw(extra.clone());
        extra.name = "renamed".into();
        extra.size += 1;
        u.modify_file_raw(extra);
        u.remove_file_raw(u.files()[3].file_id);
        u.check_columnar_coherence().unwrap();
        let reopened = StorageUnit::from_parts(
            u.id,
            u.files().to_vec(),
            u.bloom().clone(),
            u.centroid().to_vec(),
            u.mbr().cloned(),
        );
        reopened.check_columnar_coherence().unwrap();
    }

    #[test]
    fn point_query_duplicate_names_hit_first_slot() {
        let mut u = unit_with(10);
        let mut dup = u.files()[4].clone();
        dup.file_id = 5001;
        dup.name = "twin".into();
        u.insert_file(dup.clone());
        dup.file_id = 5002;
        u.insert_file(dup);
        let (hit, work) = u.point_query("twin");
        assert_eq!(hit.unwrap().file_id, 5001, "first slot in store order");
        assert_eq!(work.records, 1, "indexed lookup examines one record");
    }

    #[test]
    fn topk_ties_resolve_by_id() {
        let mut u = StorageUnit::new(0, 256, 3, vec![]);
        let base = unit_with(10).files()[0].clone();
        // Four records with identical attributes: distances tie, so the
        // (distance, id) order must keep the smallest ids.
        for id in [40u64, 10, 30, 20] {
            let mut f = base.clone();
            f.file_id = id;
            f.name = format!("tie_{id}");
            u.insert_file(f);
        }
        let q = base.attr_vector();
        let (top, _) = u.topk_query(&q, 2);
        assert_eq!(top.iter().map(|&(id, _)| id).collect::<Vec<_>>(), [10, 20]);
    }

    /// The pre-pruning row walk, kept as the reference the chunked
    /// dimension-pruned scan must match bit for bit.
    fn range_reference(u: &StorageUnit, lo: &[f64], hi: &[f64]) -> Vec<u64> {
        let mut out = Vec::new();
        for (slot, row) in u.coords().chunks_exact(ATTR_DIMS).enumerate() {
            if row
                .iter()
                .zip(lo.iter().zip(hi))
                .all(|(&x, (&l, &h))| l <= x && x <= h)
            {
                out.push(u.file_ids()[slot]);
            }
        }
        out
    }

    #[test]
    fn pruned_scan_matches_row_walk() {
        // Sizes straddling the chunk width, boxes from fully-covering
        // (zero active dims) to single-dimension slivers.
        for n in [1usize, 63, 64, 65, 130, 200] {
            let u = unit_with(n);
            let m = u.mbr().unwrap().clone();
            let (mlo, mhi) = (m.lo().to_vec(), m.hi().to_vec());
            let mut boxes: Vec<(Vec<f64>, Vec<f64>)> = vec![(mlo.clone(), mhi.clone())]; // covers everything
                                                                                         // One active dimension at a time: sliver around the middle.
            for d in 0..ATTR_DIMS {
                let mut lo = mlo.clone();
                let mut hi = mhi.clone();
                let mid = (mlo[d] + mhi[d]) / 2.0;
                lo[d] = mid - (mhi[d] - mlo[d]) * 0.1;
                hi[d] = mid + (mhi[d] - mlo[d]) * 0.1;
                boxes.push((lo, hi));
            }
            // A few shrunken boxes activating several dims.
            for f in [0.25, 0.5, 0.9] {
                let lo: Vec<f64> = mlo
                    .iter()
                    .zip(&mhi)
                    .map(|(&l, &h)| l + (h - l) * (1.0 - f) / 2.0)
                    .collect();
                let hi: Vec<f64> = mlo
                    .iter()
                    .zip(&mhi)
                    .map(|(&l, &h)| h - (h - l) * (1.0 - f) / 2.0)
                    .collect();
                boxes.push((lo, hi));
            }
            for (lo, hi) in &boxes {
                let (got, work) = u.range_query(lo, hi);
                assert_eq!(got, range_reference(&u, lo, hi), "n={n}");
                assert_eq!(work.records, n, "scan cost accounting unchanged");
            }
        }
    }

    #[test]
    fn pruned_scan_stays_exact_under_mutation() {
        // Bounds grow through raw inserts/modifies and stay supersets
        // after removals; every intermediate state must answer like the
        // reference walk.
        let mut u = unit_with(40);
        let m = u.mbr().unwrap().clone();
        let (mlo, mhi) = (m.lo().to_vec(), m.hi().to_vec());
        let probe = |u: &StorageUnit| {
            let (got, _) = u.range_query(&mlo, &mhi);
            assert_eq!(got, range_reference(u, &mlo, &mhi));
        };
        let mut extra = u.files()[0].clone();
        extra.file_id = 70001;
        extra.name = "grown".into();
        extra.size *= 1000; // push a coordinate outside the old bounds
        u.insert_file_raw(extra.clone());
        probe(&u);
        extra.size *= 4;
        u.modify_file_raw(extra);
        probe(&u);
        u.remove_file_raw(u.files()[5].file_id);
        probe(&u);
        let ids: Vec<u64> = u.files()[..10].iter().map(|f| f.file_id).collect();
        u.remove_files(&ids);
        probe(&u);
    }

    #[test]
    fn rebuild_bloom_switches_family_and_keeps_names() {
        use smartstore_bloom::HashFamily;
        let mut u = unit_with(30);
        assert_eq!(u.bloom().family(), HashFamily::default());
        let centroid = u.centroid().to_vec();
        let mbr = u.mbr().cloned();
        u.rebuild_bloom(HashFamily::Md5);
        assert_eq!(u.bloom().family(), HashFamily::Md5);
        for f in u.files() {
            assert!(u.bloom().contains(f.name.as_bytes()));
            assert!(u.point_query(&f.name).0.is_some());
        }
        // Migration must not refresh the (answer-relevant) summaries.
        assert_eq!(u.centroid(), centroid.as_slice());
        assert_eq!(u.mbr(), mbr.as_ref());
    }
}
