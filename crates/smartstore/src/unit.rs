//! Storage units — the leaf nodes of the semantic R-tree.
//!
//! "Each metadata server is a leaf node in our semantic R-tree … we
//! refer to the semantic R-tree leaf nodes as storage units" (§2.3).
//! A storage unit holds the metadata of its files, a Bloom filter over
//! their filenames, the unit's semantic vector (attribute centroid) and
//! its MBR in attribute space.

use smartstore_bloom::BloomFilter;
use smartstore_rtree::Rect;
use smartstore_trace::{FileMetadata, ATTR_DIMS};

/// Work performed by a local query, for latency accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalWork {
    /// Metadata records examined.
    pub records: usize,
    /// Bloom filters probed.
    pub filters: usize,
}

/// One metadata server's local state.
#[derive(Clone, Debug)]
pub struct StorageUnit {
    /// Stable unit id (also its simulator node id).
    pub id: usize,
    files: Vec<FileMetadata>,
    bloom: BloomFilter,
    centroid: Vec<f64>,
    mbr: Option<Rect>,
}

impl StorageUnit {
    /// Creates a unit with the given Bloom geometry and initial files.
    pub fn new(
        id: usize,
        bloom_bits: usize,
        bloom_hashes: usize,
        files: Vec<FileMetadata>,
    ) -> Self {
        let mut unit = Self {
            id,
            files: Vec::new(),
            bloom: BloomFilter::new(bloom_bits, bloom_hashes),
            centroid: vec![0.0; ATTR_DIMS],
            mbr: None,
        };
        for f in files {
            unit.insert_file(f);
        }
        unit
    }

    /// Reassembles a unit from serialized state *without* recomputing
    /// summaries: a persisted unit must come back with exactly the
    /// (possibly stale) Bloom filter, centroid and MBR it was saved
    /// with, so that queries against the reopened system answer
    /// identically to the live one.
    pub fn from_parts(
        id: usize,
        files: Vec<FileMetadata>,
        bloom: BloomFilter,
        centroid: Vec<f64>,
        mbr: Option<Rect>,
    ) -> Self {
        assert_eq!(centroid.len(), ATTR_DIMS, "from_parts: centroid dims");
        Self {
            id,
            files,
            bloom,
            centroid,
            mbr,
        }
    }

    /// Number of files stored.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the unit holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// The unit's files.
    pub fn files(&self) -> &[FileMetadata] {
        &self.files
    }

    /// The unit's filename Bloom filter.
    pub fn bloom(&self) -> &BloomFilter {
        &self.bloom
    }

    /// The unit's semantic vector: the centroid of its files' attribute
    /// vectors ("Each node can be summarized by a geometric centroid of
    /// all metadata it represents", §3.1.1).
    pub fn centroid(&self) -> &[f64] {
        &self.centroid
    }

    /// The unit's MBR in attribute space, `None` when empty.
    pub fn mbr(&self) -> Option<&Rect> {
        self.mbr.as_ref()
    }

    /// Adds a file, updating Bloom filter, centroid and MBR.
    pub fn insert_file(&mut self, file: FileMetadata) {
        self.bloom.insert(file.name.as_bytes());
        let v = file.attr_vector();
        let n = self.files.len() as f64;
        for (c, &x) in self.centroid.iter_mut().zip(v.iter()) {
            *c = (*c * n + x) / (n + 1.0);
        }
        let point = Rect::point(&v);
        self.mbr = Some(match self.mbr.take() {
            Some(m) => m.union(&point),
            None => point,
        });
        self.files.push(file);
    }

    /// Removes a file by id. The Bloom filter keeps the stale name (a
    /// standard Bloom limitation; the paper accepts "false positives and
    /// false negatives … identified when the target metadata is
    /// accessed", §5.4.1); the centroid and MBR are recomputed.
    pub fn remove_file(&mut self, file_id: u64) -> Option<FileMetadata> {
        let pos = self.files.iter().position(|f| f.file_id == file_id)?;
        let removed = self.files.remove(pos);
        self.recompute_summaries();
        Some(removed)
    }

    /// Adds a file *without* refreshing the unit's summaries — the
    /// change stream mutates data immediately while index summaries
    /// (Bloom/centroid/MBR) stay stale until a lazy update
    /// ([`Self::recompute_summaries`]) fires, per §3.4/§4.4.
    pub fn insert_file_raw(&mut self, file: FileMetadata) {
        self.files.push(file);
    }

    /// Removes a file by id without refreshing summaries.
    pub fn remove_file_raw(&mut self, file_id: u64) -> Option<FileMetadata> {
        let pos = self.files.iter().position(|f| f.file_id == file_id)?;
        Some(self.files.remove(pos))
    }

    /// Replaces a file's metadata in place without refreshing summaries;
    /// inserts if absent.
    pub fn modify_file_raw(&mut self, file: FileMetadata) {
        match self.files.iter_mut().find(|f| f.file_id == file.file_id) {
            Some(slot) => *slot = file,
            None => self.files.push(file),
        }
    }

    /// Rebuilds centroid, MBR and Bloom filter from current contents
    /// (used after bulk changes and version flushes).
    pub fn recompute_summaries(&mut self) {
        let n = self.files.len();
        self.centroid = vec![0.0; ATTR_DIMS];
        self.mbr = None;
        self.bloom.clear();
        if n == 0 {
            return;
        }
        for f in &self.files {
            let v = f.attr_vector();
            for (c, &x) in self.centroid.iter_mut().zip(v.iter()) {
                *c += x;
            }
            let p = Rect::point(&v);
            self.mbr = Some(match self.mbr.take() {
                Some(m) => m.union(&p),
                None => p,
            });
        }
        for c in &mut self.centroid {
            *c /= n as f64;
        }
        for f in &self.files {
            self.bloom.insert(f.name.as_bytes());
        }
    }

    /// Local point query: probe the Bloom filter, and on a positive hit
    /// scan for the exact filename.
    pub fn point_query(&self, name: &str) -> (Option<&FileMetadata>, LocalWork) {
        let mut work = LocalWork {
            records: 0,
            filters: 1,
        };
        if !self.bloom.contains(name.as_bytes()) {
            return (None, work);
        }
        for f in &self.files {
            work.records += 1;
            if f.name == name {
                return (Some(f), work);
            }
        }
        (None, work)
    }

    /// Local range query over the projected attribute space.
    pub fn range_query(&self, lo: &[f64], hi: &[f64]) -> (Vec<u64>, LocalWork) {
        let mut out = Vec::new();
        let mut work = LocalWork::default();
        // MBR pre-check: disjoint units do no record work.
        if let Some(m) = &self.mbr {
            let q = Rect::new(lo.to_vec(), hi.to_vec());
            if !m.intersects(&q) {
                return (out, work);
            }
        }
        for f in &self.files {
            work.records += 1;
            let v = f.attr_vector();
            if v.iter()
                .zip(lo.iter().zip(hi))
                .all(|(&x, (&l, &h))| l <= x && x <= h)
            {
                out.push(f.file_id);
            }
        }
        (out, work)
    }

    /// Local top-k: the unit's k nearest files to `point`, with squared
    /// distances (for cross-unit merge).
    pub fn topk_query(&self, point: &[f64], k: usize) -> (Vec<(u64, f64)>, LocalWork) {
        let mut scored: Vec<(u64, f64)> = self
            .files
            .iter()
            .map(|f| {
                let d = f
                    .attr_vector()
                    .iter()
                    .zip(point)
                    .map(|(&a, &q)| (a - q) * (a - q))
                    .sum::<f64>();
                (f.file_id, d)
            })
            .collect();
        let work = LocalWork {
            records: self.files.len(),
            filters: 0,
        };
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
        scored.truncate(k);
        (scored, work)
    }

    /// Approximate resident bytes of the unit's index state (Bloom
    /// filter + centroid + MBR), excluding the metadata records
    /// themselves — the quantity Fig. 7 compares across systems.
    pub fn index_size_bytes(&self) -> usize {
        self.bloom.size_bytes() + ATTR_DIMS * 8 * 3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn unit_with(n: usize) -> StorageUnit {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: n,
            n_clusters: 3,
            seed: 5,
            ..GeneratorConfig::default()
        });
        StorageUnit::new(0, 1024, 7, pop.files)
    }

    #[test]
    fn centroid_is_mean_of_vectors() {
        let u = unit_with(50);
        let mut mean = vec![0.0; ATTR_DIMS];
        for f in u.files() {
            for (m, v) in mean.iter_mut().zip(f.attr_vector()) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= 50.0;
        }
        for (a, b) in u.centroid().iter().zip(&mean) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn mbr_contains_every_file_vector() {
        let u = unit_with(80);
        let mbr = u.mbr().unwrap();
        for f in u.files() {
            assert!(mbr.contains_point(&f.attr_vector()));
        }
    }

    #[test]
    fn point_query_hits_own_files() {
        let u = unit_with(30);
        let name = u.files()[17].name.clone();
        let (hit, work) = u.point_query(&name);
        assert_eq!(hit.unwrap().name, name);
        assert_eq!(work.filters, 1);
        assert!(work.records >= 1);
    }

    #[test]
    fn point_query_misses_cheaply_via_bloom() {
        let u = unit_with(30);
        let (hit, work) = u.point_query("definitely_not_here_123456");
        assert!(hit.is_none());
        // With overwhelming probability the Bloom filter prunes the scan.
        assert_eq!(work.records, 0, "bloom should prune the record scan");
    }

    #[test]
    fn range_query_matches_filter() {
        let u = unit_with(100);
        let (lo, hi) = {
            let m = u.mbr().unwrap();
            (m.lo().to_vec(), m.hi().to_vec())
        };
        let (all, _) = u.range_query(&lo, &hi);
        assert_eq!(all.len(), 100, "whole-domain range returns everything");
        // Disjoint query does zero record work.
        let far_lo: Vec<f64> = hi.iter().map(|&x| x + 100.0).collect();
        let far_hi: Vec<f64> = hi.iter().map(|&x| x + 200.0).collect();
        let (none, work) = u.range_query(&far_lo, &far_hi);
        assert!(none.is_empty());
        assert_eq!(work.records, 0);
    }

    #[test]
    fn topk_returns_sorted_k() {
        let u = unit_with(60);
        let q = u.files()[10].attr_vector();
        let (top, work) = u.topk_query(&q, 5);
        assert_eq!(top.len(), 5);
        assert_eq!(work.records, 60);
        assert_eq!(
            top[0].0,
            u.files()[10].file_id,
            "query at a file finds it first"
        );
        for w in top.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn insert_and_remove_roundtrip() {
        let mut u = unit_with(10);
        let extra = {
            let mut f = u.files()[0].clone();
            f.file_id = 9999;
            f.name = "extra_file".into();
            f
        };
        u.insert_file(extra);
        assert_eq!(u.len(), 11);
        assert!(u.point_query("extra_file").0.is_some());
        let removed = u.remove_file(9999).unwrap();
        assert_eq!(removed.name, "extra_file");
        assert_eq!(u.len(), 10);
        assert!(u.point_query("extra_file").0.is_none());
    }

    #[test]
    fn empty_unit_behaviour() {
        let u = StorageUnit::new(3, 128, 3, vec![]);
        assert!(u.is_empty());
        assert!(u.mbr().is_none());
        let (r, _) = u.range_query(&[0.0; ATTR_DIMS], &[1.0; ATTR_DIMS]);
        assert!(r.is_empty());
        let (t, _) = u.topk_query(&[0.0; ATTR_DIMS], 4);
        assert!(t.is_empty());
    }

    #[test]
    fn recompute_after_bulk_mutation() {
        let mut u = unit_with(20);
        let before_mbr = u.mbr().unwrap().clone();
        // Remove half the files.
        let ids: Vec<u64> = u.files()[..10].iter().map(|f| f.file_id).collect();
        for id in ids {
            u.remove_file(id);
        }
        assert_eq!(u.len(), 10);
        let after = u.mbr().unwrap();
        assert!(
            before_mbr.contains_rect(after),
            "MBR must tighten, not grow"
        );
    }
}
