//! Mapping index units onto storage units (§4.2) and multi-mapping the
//! root (§4.3).
//!
//! "Our mapping is based on a simple bottom-up approach that iteratively
//! applies random selection and labeling operations … An index unit in
//! the first level can be first randomly mapped to one of its child
//! nodes in the R-tree (i.e., a storage unit from the covered semantic
//! group). Each storage unit that has been mapped by an index node is
//! labeled to avoid being mapped by another index node." The root is
//! additionally replicated into every top-level subtree so it "can be
//! found within each of the subtrees", removing the single point of
//! failure.

use crate::tree::{NodeId, SemanticRTree};
use rand::Rng;
use std::collections::HashMap;

/// The computed placement of index units on storage units.
#[derive(Clone, Debug)]
pub struct IndexMapping {
    /// `assignment[index_node] = storage unit hosting it`.
    pub assignment: HashMap<NodeId, usize>,
    /// Storage units hosting a replica of the root (one per top-level
    /// subtree).
    pub root_replicas: Vec<usize>,
}

impl IndexMapping {
    /// Hosting storage unit of an index node.
    pub fn host_of(&self, node: NodeId) -> Option<usize> {
        self.assignment.get(&node).copied()
    }

    /// Number of index units hosted per storage unit (load check).
    pub fn load_histogram(&self) -> HashMap<usize, usize> {
        let mut h = HashMap::new();
        // lint:allow(D002) -- additive histogram; order-insensitive
        for &unit in self.assignment.values() {
            *h.entry(unit).or_insert(0) += 1;
        }
        h
    }
}

/// Runs the bottom-up random label-and-assign mapping.
///
/// Levels are processed from 1 upward; each index unit draws a random
/// *unlabeled* storage unit from its own subtree, falling back to any
/// unlabeled unit and finally to the least-loaded unit when all are
/// labeled ("In practice, the number of storage units is generally much
/// larger than that of index units … each index unit can be mapped to a
/// different storage unit").
pub fn map_index_units<R: Rng>(tree: &SemanticRTree, rng: &mut R) -> IndexMapping {
    let mut assignment: HashMap<NodeId, usize> = HashMap::new();
    let mut labeled: Vec<usize> = Vec::new();
    let mut load: HashMap<usize, usize> = HashMap::new();

    let height = tree.height() as u32;
    for level in 1..height.max(2) {
        for node in tree.index_units_at_level(level) {
            let candidates: Vec<usize> = tree
                .descendant_units(node)
                .into_iter()
                .filter(|u| !labeled.contains(u))
                .collect();
            let chosen = if !candidates.is_empty() {
                candidates[rng.gen_range(0..candidates.len())]
            } else {
                // All subtree units labeled: any unlabeled unit system-wide.
                let all = tree.descendant_units(tree.root());
                let free: Vec<usize> = all
                    .iter()
                    .copied()
                    .filter(|u| !labeled.contains(u))
                    .collect();
                if !free.is_empty() {
                    free[rng.gen_range(0..free.len())]
                } else {
                    // Fully labeled: least-loaded unit.
                    all.iter()
                        .min_by_key(|u| load.get(u).copied().unwrap_or(0))
                        .copied()
                        .unwrap_or(0)
                }
            };
            assignment.insert(node, chosen);
            labeled.push(chosen);
            *load.entry(chosen).or_insert(0) += 1;
        }
    }

    // Root multi-mapping: one replica per top-level subtree (§4.3).
    let root = tree.root();
    let mut root_replicas = Vec::new();
    if tree.node(root).level == 0 {
        // Single-leaf tree: the only unit hosts the root.
        root_replicas.extend(tree.node(root).unit);
    } else {
        for &child in &tree.node(root).children {
            let subtree = tree.descendant_units(child);
            if subtree.is_empty() {
                continue;
            }
            let pick = subtree[rng.gen_range(0..subtree.len())];
            root_replicas.push(pick);
        }
    }
    if let Some(&first) = root_replicas.first() {
        assignment.insert(root, first);
    }

    IndexMapping {
        assignment,
        root_replicas,
    }
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use crate::config::SmartStoreConfig;
    use crate::grouping::partition_balanced;
    use crate::unit::StorageUnit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn tree(n_units: usize) -> SemanticRTree {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: n_units * 40,
            n_clusters: n_units,
            seed: 23,
            ..GeneratorConfig::default()
        });
        let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
        let assignment = partition_balanced(&vectors, n_units, 3, 23);
        let mut buckets: Vec<Vec<smartstore_trace::FileMetadata>> = vec![Vec::new(); n_units];
        for (f, &a) in pop.files.into_iter().zip(assignment.iter()) {
            buckets[a].push(f);
        }
        let units: Vec<StorageUnit> = buckets
            .into_iter()
            .enumerate()
            .map(|(i, files)| StorageUnit::new(i, 1024, 7, files))
            .collect();
        SemanticRTree::build(&units, &SmartStoreConfig::default())
    }

    #[test]
    fn every_index_unit_mapped() {
        let t = tree(30);
        let mut rng = StdRng::seed_from_u64(1);
        let m = map_index_units(&t, &mut rng);
        let expected = t.stats().index_units;
        assert_eq!(m.assignment.len(), expected);
    }

    #[test]
    fn hosts_are_valid_units() {
        let t = tree(20);
        let mut rng = StdRng::seed_from_u64(2);
        let m = map_index_units(&t, &mut rng);
        for &unit in m.assignment.values() {
            assert!(unit < 20, "host {unit} out of range");
        }
    }

    #[test]
    fn first_level_maps_inside_own_subtree() {
        let t = tree(40);
        let mut rng = StdRng::seed_from_u64(3);
        let m = map_index_units(&t, &mut rng);
        for g in t.first_level_index_units() {
            let host = m.host_of(g).unwrap();
            let subtree = t.descendant_units(g);
            assert!(
                subtree.contains(&host),
                "group {g} hosted outside its subtree (host {host}, subtree {subtree:?})"
            );
        }
    }

    #[test]
    fn units_mostly_distinct_when_plentiful() {
        // 40 units, far fewer index units ⇒ low collision.
        let t = tree(40);
        let mut rng = StdRng::seed_from_u64(4);
        let m = map_index_units(&t, &mut rng);
        let max_load = m.load_histogram().values().copied().max().unwrap_or(0);
        assert!(max_load <= 2, "max load {max_load} too high with 40 units");
    }

    #[test]
    fn root_replicated_per_subtree() {
        let t = tree(30);
        let mut rng = StdRng::seed_from_u64(5);
        let m = map_index_units(&t, &mut rng);
        let n_subtrees = t.node(t.root()).children.len();
        assert_eq!(m.root_replicas.len(), n_subtrees);
        // Each replica lives inside its own top-level subtree.
        for (child, replica) in t.node(t.root()).children.iter().zip(&m.root_replicas) {
            assert!(t.descendant_units(*child).contains(replica));
        }
    }

    #[test]
    fn mapping_deterministic_under_seed() {
        let t = tree(25);
        let a = map_index_units(&t, &mut StdRng::seed_from_u64(9));
        let b = map_index_units(&t, &mut StdRng::seed_from_u64(9));
        assert_eq!(a.assignment, b.assignment);
        assert_eq!(a.root_replicas, b.root_replicas);
    }
}
