//! The semantic R-tree (§2.1, §3.1.2, §3.2, §4.1).
//!
//! "A semantic R-tree … consists of index units (i.e., non-leaf nodes)
//! containing location and mapping information and storage units (i.e.,
//! leaf nodes) containing file metadata." Every node carries:
//!
//! * an **MBR** over the attribute space of all metadata below it,
//! * a **semantic centroid** (the geometric centroid of §3.1.1) used by
//!   LSI correlation routing,
//! * a **Bloom filter** that is the union of its children's filters
//!   (§3.3.3, Fig. 4).
//!
//! Construction is bottom-up from the grouping hierarchy; reconfiguration
//! (unit insertion §3.2.1, deletion §3.2.2, node split/merge §4.1)
//! follows the classical R-tree algorithms adapted to semantic
//! correlation.

use crate::config::SmartStoreConfig;
use crate::grouping::{build_hierarchy, GroupingHierarchy};
use crate::unit::StorageUnit;
use smartstore_bloom::BloomFilter;
use smartstore_linalg::cosine_similarity;
use smartstore_rtree::Rect;

/// Index of a node in the tree arena.
pub type NodeId = usize;

/// The summarized state of one storage unit, sufficient to build a
/// semantic R-tree over it (possibly in a projected attribute subspace).
#[derive(Clone, Debug)]
pub struct UnitSummary {
    /// Storage-unit id.
    pub id: usize,
    /// Semantic centroid (full or subset-projected).
    pub centroid: Vec<f64>,
    /// MBR in the same space as `centroid`.
    pub mbr: Option<Rect>,
    /// Filename Bloom filter.
    pub bloom: BloomFilter,
}

/// One semantic R-tree node.
#[derive(Clone, Debug)]
pub struct SemanticNode {
    /// Arena id.
    pub id: NodeId,
    /// 0 for leaves (storage units); parents of leaves — the paper's
    /// "first-level index units" — are level 1.
    pub level: u32,
    /// MBR over all metadata below this node (`None` only for an empty
    /// leaf).
    pub mbr: Option<Rect>,
    /// Semantic centroid (weighted mean of descendant unit centroids).
    pub centroid: Vec<f64>,
    /// Union Bloom filter over descendant filenames.
    pub bloom: BloomFilter,
    /// Children node ids (empty for leaves).
    pub children: Vec<NodeId>,
    /// Parent node id (`None` for the root).
    pub parent: Option<NodeId>,
    /// Storage-unit id when this is a leaf.
    pub unit: Option<usize>,
    /// Number of storage units below this node (1 for leaves).
    pub leaf_count: usize,
}

/// Structural statistics for the space-overhead experiment (Fig. 7).
#[derive(Clone, Copy, Debug, Default)]
pub struct TreeStats {
    /// All nodes (leaves + index units).
    pub node_count: usize,
    /// Non-leaf nodes ("index units").
    pub index_units: usize,
    /// Tree height (1 = single leaf).
    pub height: usize,
}

/// Result of routing a query through the tree.
#[derive(Clone, Debug, Default)]
pub struct Route {
    /// Storage-unit ids that must evaluate the query, in visit order.
    pub target_units: Vec<usize>,
    /// Tree nodes examined while routing.
    pub nodes_visited: usize,
    /// Bloom filters probed (point queries).
    pub filters_probed: usize,
    /// Routing distance in groups: 0 when every target unit lies in one
    /// first-level group (the paper's "0-hop", Fig. 8), otherwise the
    /// number of additional first-level groups visited.
    pub group_hops: usize,
}

/// The semantic R-tree over a set of storage units.
#[derive(Clone, Debug)]
pub struct SemanticRTree {
    nodes: Vec<SemanticNode>,
    root: NodeId,
    cfg: SmartStoreConfig,
    free: Vec<NodeId>,
}

/// The raw structural state of a [`SemanticRTree`] — everything needed
/// to reassemble it byte-for-byte (the configuration travels
/// separately). Used by the persistence layer.
#[derive(Clone, Debug)]
pub struct TreeParts {
    /// The node arena, including freed slots.
    pub nodes: Vec<SemanticNode>,
    /// Root node id.
    pub root: NodeId,
    /// Free-list of recycled arena slots.
    pub free: Vec<NodeId>,
}

impl SemanticRTree {
    /// Builds the tree bottom-up from storage units using LSI grouping
    /// (§3.1.2): units whose correlation exceeds ε₁ aggregate into
    /// first-level index units, recursively until a single root.
    pub fn build(units: &[StorageUnit], cfg: &SmartStoreConfig) -> Self {
        assert!(!units.is_empty(), "SemanticRTree::build: no storage units");
        let summaries: Vec<UnitSummary> = units
            .iter()
            .map(|u| UnitSummary {
                id: u.id,
                centroid: u.centroid().to_vec(),
                mbr: u.mbr().cloned(),
                bloom: u.bloom().clone(),
            })
            .collect();
        Self::build_from_summaries(&summaries, cfg)
    }

    /// Builds from bare unit summaries — used by the automatic
    /// configuration (§2.4) to construct trees over attribute *subsets*
    /// where each unit's centroid/MBR is a projection.
    pub fn build_from_summaries(units: &[UnitSummary], cfg: &SmartStoreConfig) -> Self {
        assert!(!units.is_empty(), "SemanticRTree: no unit summaries");
        let vectors: Vec<Vec<f64>> = units.iter().map(|u| u.centroid.clone()).collect();
        let hierarchy = build_hierarchy(
            &vectors,
            |lvl| cfg.threshold_for_level(lvl),
            cfg.lsi_rank,
            cfg.rtree.max_entries,
        );
        Self::from_hierarchy(units, &hierarchy, cfg)
    }

    /// Assembles the node arena from a precomputed grouping hierarchy.
    fn from_hierarchy(
        units: &[UnitSummary],
        hierarchy: &GroupingHierarchy,
        cfg: &SmartStoreConfig,
    ) -> Self {
        let mut nodes: Vec<SemanticNode> = Vec::new();
        // Leaves first.
        let mut prev_level_ids: Vec<NodeId> = units
            .iter()
            .map(|u| {
                let id = nodes.len();
                nodes.push(SemanticNode {
                    id,
                    level: 0,
                    mbr: u.mbr.clone(),
                    centroid: u.centroid.clone(),
                    bloom: u.bloom.clone(),
                    children: Vec::new(),
                    parent: None,
                    unit: Some(u.id),
                    leaf_count: 1,
                });
                id
            })
            .collect();

        // If there is a single unit, it is its own root.
        if units.len() == 1 {
            let root = prev_level_ids[0];
            return Self {
                nodes,
                root,
                cfg: cfg.clone(),
                free: Vec::new(),
            };
        }

        for (lvl_idx, level) in hierarchy.levels.iter().enumerate() {
            let level_no = lvl_idx as u32 + 1;
            let mut this_level_ids = Vec::with_capacity(level.groups.len());
            for group in &level.groups {
                let child_ids: Vec<NodeId> = group.iter().map(|&g| prev_level_ids[g]).collect();
                let id = nodes.len();
                let (mbr, centroid, bloom, leaf_count) =
                    summarize_children(&nodes, &child_ids, cfg);
                for &c in &child_ids {
                    nodes[c].parent = Some(id);
                }
                nodes.push(SemanticNode {
                    id,
                    level: level_no,
                    mbr,
                    centroid,
                    bloom,
                    children: child_ids,
                    parent: None,
                    unit: None,
                    leaf_count,
                });
                this_level_ids.push(id);
            }
            prev_level_ids = this_level_ids;
        }
        debug_assert_eq!(prev_level_ids.len(), 1, "hierarchy must end in one root");
        let root = prev_level_ids[0];
        Self {
            nodes,
            root,
            cfg: cfg.clone(),
            free: Vec::new(),
        }
    }

    /// Exports the tree's structural state for serialization.
    pub fn to_parts(&self) -> TreeParts {
        TreeParts {
            nodes: self.nodes.clone(),
            root: self.root,
            free: self.free.clone(),
        }
    }

    /// Reassembles a tree from exported parts and a configuration —
    /// the exact inverse of [`Self::to_parts`].
    ///
    /// # Panics
    /// If `parts.root` is out of range.
    pub fn from_parts(parts: TreeParts, cfg: &SmartStoreConfig) -> Self {
        assert!(
            parts.root < parts.nodes.len(),
            "from_parts: root out of range"
        );
        Self {
            nodes: parts.nodes,
            root: parts.root,
            cfg: cfg.clone(),
            free: parts.free,
        }
    }

    /// Root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable node access.
    pub fn node(&self, id: NodeId) -> &SemanticNode {
        &self.nodes[id]
    }

    /// The leaf node hosting storage unit `unit_id`, if present.
    pub fn leaf_of_unit(&self, unit_id: usize) -> Option<NodeId> {
        self.live_node_ids()
            .find(|&id| self.nodes[id].unit == Some(unit_id))
    }

    /// Ids of the first-level index units (parents of leaves) — the
    /// granularity of "groups" in Figs. 8 & 13 and of version replicas.
    pub fn first_level_index_units(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .live_node_ids()
            .filter(|&id| self.nodes[id].level == 1)
            .collect();
        // Degenerate case: the root itself is a leaf.
        if out.is_empty() && self.nodes[self.root].level == 0 {
            out.push(self.root);
        }
        out.sort_unstable();
        out
    }

    /// The first-level index unit above a leaf (or the leaf itself in a
    /// single-node tree).
    pub fn group_of_leaf(&self, leaf: NodeId) -> NodeId {
        let mut n = leaf;
        while let Some(p) = self.nodes[n].parent {
            if self.nodes[n].level == 1 {
                break;
            }
            if self.nodes[p].level == 1 {
                return p;
            }
            n = p;
        }
        n
    }

    /// Iterates over live (non-freed) node ids.
    fn live_node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).filter(move |id| !self.free.contains(id))
    }

    /// Storage-unit ids of all leaves below `node` (inclusive for leaf
    /// nodes).
    pub fn descendant_units(&self, node: NodeId) -> Vec<usize> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            let nd = &self.nodes[n];
            if nd.level == 0 {
                if let Some(u) = nd.unit {
                    out.push(u);
                }
            } else {
                stack.extend(nd.children.iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// All live index-unit node ids at a given level (level ≥ 1).
    pub fn index_units_at_level(&self, level: u32) -> Vec<NodeId> {
        assert!(level >= 1, "index units start at level 1");
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let nd = &self.nodes[n];
            if nd.level == level {
                out.push(n);
            } else if nd.level > level {
                stack.extend(nd.children.iter().copied());
            }
        }
        out.sort_unstable();
        out
    }

    /// Height of the tree (root level + 1).
    pub fn height(&self) -> usize {
        self.nodes[self.root].level as usize + 1
    }

    /// Tree statistics.
    pub fn stats(&self) -> TreeStats {
        let mut node_count = 0;
        let mut index_units = 0;
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            node_count += 1;
            if self.nodes[n].level > 0 {
                index_units += 1;
                stack.extend(self.nodes[n].children.iter().copied());
            }
        }
        TreeStats {
            node_count,
            index_units,
            height: self.nodes[self.root].level as usize + 1,
        }
    }

    /// Per-node index bytes (MBR + centroid + Bloom filter) summed over
    /// index units — the decentralized structure charged in Fig. 7.
    pub fn index_size_bytes(&self) -> usize {
        let d = self.nodes.get(self.root).map_or(0, |n| n.centroid.len());
        let per_node = d * 8 * 3 + self.cfg.bloom_bits / 8;
        self.stats().index_units * per_node
    }

    // ------------------------------------------------------------------
    // Query routing
    // ------------------------------------------------------------------

    /// Routes a range query: descend from the root, following children
    /// whose MBR intersects the query box (§3.3.1). Returns every
    /// qualifying storage unit.
    pub fn route_range(&self, lo: &[f64], hi: &[f64]) -> Route {
        let q = Rect::new(lo.to_vec(), hi.to_vec());
        let mut route = Route::default();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            route.nodes_visited += 1;
            let node = &self.nodes[n];
            let intersects = node.mbr.as_ref().is_some_and(|m| m.intersects(&q));
            if !intersects {
                continue;
            }
            if node.level == 0 {
                if let Some(unit) = node.unit {
                    route.target_units.push(unit);
                }
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
        route.group_hops = self.hops_for_targets(&route.target_units);
        route
    }

    /// Routes a top-k query with the paper's MaxD pruning (§3.3.2):
    /// best-first over MBR min-distances; a node is expanded only while
    /// it could still beat the current k-th best distance, which callers
    /// update via the returned candidate order. Routing alone cannot
    /// know file distances, so this returns units in best-first order
    /// with their MBR lower bounds; the system layer evaluates units in
    /// that order and stops when the next lower bound exceeds MaxD.
    pub fn route_topk(&self, point: &[f64]) -> (Vec<(usize, f64)>, usize) {
        use std::cmp::Ordering;
        use std::collections::BinaryHeap;
        struct Cand {
            dist: f64,
            node: NodeId,
        }
        impl PartialEq for Cand {
            fn eq(&self, o: &Self) -> bool {
                self.dist == o.dist
            }
        }
        impl Eq for Cand {}
        impl PartialOrd for Cand {
            fn partial_cmp(&self, o: &Self) -> Option<Ordering> {
                Some(self.cmp(o))
            }
        }
        impl Ord for Cand {
            fn cmp(&self, o: &Self) -> Ordering {
                o.dist.total_cmp(&self.dist)
            }
        }
        let mut visited = 0;
        let mut order: Vec<(usize, f64)> = Vec::new();
        let mut heap = BinaryHeap::new();
        heap.push(Cand {
            dist: 0.0,
            node: self.root,
        });
        while let Some(Cand { dist, node }) = heap.pop() {
            visited += 1;
            let n = &self.nodes[node];
            if n.level == 0 {
                if let Some(u) = n.unit {
                    order.push((u, dist));
                }
                continue;
            }
            for &c in &n.children {
                let d = match &self.nodes[c].mbr {
                    Some(m) => m.min_sq_dist(point),
                    None => f64::INFINITY,
                };
                heap.push(Cand { dist: d, node: c });
            }
        }
        (order, visited)
    }

    /// Routes a filename point query down Bloom-filter positive paths
    /// (§3.3.3).
    pub fn route_point(&self, name: &str) -> Route {
        let mut route = Route::default();
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            route.nodes_visited += 1;
            route.filters_probed += 1;
            let node = &self.nodes[n];
            if !node.bloom.contains(name.as_bytes()) {
                continue;
            }
            if node.level == 0 {
                if let Some(unit) = node.unit {
                    route.target_units.push(unit);
                }
            } else {
                stack.extend(node.children.iter().copied());
            }
        }
        route.group_hops = self.hops_for_targets(&route.target_units);
        route
    }

    /// Number of *extra* first-level groups a target set spans (0 when
    /// all targets share one group — the paper's 0-hop case).
    fn hops_for_targets(&self, units: &[usize]) -> usize {
        if units.len() <= 1 {
            return 0;
        }
        let mut groups: Vec<NodeId> = units
            .iter()
            .filter_map(|&u| self.leaf_of_unit(u))
            .map(|leaf| self.group_of_leaf(leaf))
            .collect();
        groups.sort_unstable();
        groups.dedup();
        groups.len().saturating_sub(1)
    }

    /// The first-level index unit whose semantic centroid is most
    /// correlated with `vector` (the off-line pre-processing target
    /// choice, §3.4).
    pub fn most_correlated_group(&self, vector: &[f64]) -> NodeId {
        let groups = self.first_level_index_units();
        groups
            .iter()
            .max_by(|&&a, &&b| {
                let ca = cosine_similarity(&self.nodes[a].centroid, vector);
                let cb = cosine_similarity(&self.nodes[b].centroid, vector);
                ca.total_cmp(&cb)
            })
            .copied()
            .unwrap_or_else(|| self.root())
    }

    // ------------------------------------------------------------------
    // Reconfiguration (§3.2, §4.1)
    // ------------------------------------------------------------------

    /// Inserts a new storage unit (§3.2.1): starting from the most
    /// correlated group, admission is checked against the level-1
    /// threshold; on rejection the unit is forwarded to adjacent groups;
    /// if no group admits it, the most correlated group takes it anyway
    /// (threshold adjustment). Splits propagate when fan-out exceeds M.
    pub fn insert_unit(&mut self, unit: &StorageUnit) {
        let leaf = self.alloc(SemanticNode {
            id: 0, // fixed by alloc
            level: 0,
            mbr: unit.mbr().cloned(),
            centroid: unit.centroid().to_vec(),
            bloom: unit.bloom().clone(),
            children: Vec::new(),
            parent: None,
            unit: Some(unit.id),
            leaf_count: 1,
        });

        // Degenerate tree (root is a leaf): grow a level-1 root.
        if self.nodes[self.root].level == 0 {
            let old = self.root;
            let new_root = self.alloc(SemanticNode {
                id: 0,
                level: 1,
                mbr: None,
                centroid: vec![0.0; self.nodes[old].centroid.len()],
                bloom: BloomFilter::with_family(
                    self.cfg.bloom_bits,
                    self.cfg.bloom_hashes,
                    self.cfg.bloom_family,
                ),
                children: vec![old, leaf],
                parent: None,
                unit: None,
                leaf_count: 2,
            });
            self.nodes[old].parent = Some(new_root);
            self.nodes[leaf].parent = Some(new_root);
            self.root = new_root;
            self.refresh_upward(new_root);
            return;
        }

        let groups = self.first_level_index_units();
        let eps = self.cfg.threshold_for_level(1);
        // Order groups by correlation (most correlated first = the
        // "randomly chosen then forwarded to adjacent groups" walk,
        // collapsed to its fixed point).
        let mut ranked: Vec<(NodeId, f64)> = groups
            .iter()
            .map(|&g| {
                (
                    g,
                    cosine_similarity(&self.nodes[g].centroid, &self.nodes[leaf].centroid),
                )
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let Some(admitted) = ranked
            .iter()
            .find(|&&(_, corr)| corr > eps)
            .or_else(|| ranked.first())
            .map(|&(g, _)| g)
        else {
            // No first-level groups: the leaf hangs directly off the root.
            let root = self.root;
            self.nodes[leaf].parent = Some(root);
            self.nodes[root].children.push(leaf);
            self.refresh_upward(root);
            return;
        };

        self.nodes[leaf].parent = Some(admitted);
        self.nodes[admitted].children.push(leaf);
        self.refresh_upward(admitted);
        self.split_if_needed(admitted);
    }

    /// Removes a storage unit (§3.2.2): the leaf is deleted; "if a group
    /// contains too few storage units, the remaining units of this group
    /// are merged into its sibling group", and single-child chains are
    /// collapsed with upward height adjustment.
    ///
    /// Returns `false` if the unit is not in the tree.
    pub fn remove_unit(&mut self, unit_id: usize) -> bool {
        let Some(leaf) = self.leaf_of_unit(unit_id) else {
            return false;
        };
        let Some(parent) = self.nodes[leaf].parent else {
            // Removing the only unit: leave an empty leaf root.
            self.nodes[leaf].mbr = None;
            self.nodes[leaf].unit = None;
            self.nodes[leaf].leaf_count = 0;
            return true;
        };
        self.nodes[parent].children.retain(|&c| c != leaf);
        self.free.push(leaf);
        self.merge_if_needed(parent);
        true
    }

    /// Splits `node` (and ancestors) while fan-out exceeds M (§4.1).
    fn split_if_needed(&mut self, node: NodeId) {
        if self.nodes[node].children.len() <= self.cfg.rtree.max_entries {
            return;
        }
        // Partition children into two sets seeded by the least
        // correlated pair (the semantic analogue of Guttman PickSeeds).
        let children = self.nodes[node].children.clone();
        let (mut sa, mut sb) = (0, 1);
        let mut worst = f64::INFINITY;
        for i in 0..children.len() {
            for j in (i + 1)..children.len() {
                let c = cosine_similarity(
                    &self.nodes[children[i]].centroid,
                    &self.nodes[children[j]].centroid,
                );
                if c < worst {
                    worst = c;
                    sa = i;
                    sb = j;
                }
            }
        }
        let mut group_a = vec![children[sa]];
        let mut group_b = vec![children[sb]];
        for (i, &c) in children.iter().enumerate() {
            if i == sa || i == sb {
                continue;
            }
            let ca = cosine_similarity(&self.nodes[c].centroid, &self.nodes[group_a[0]].centroid);
            let cb = cosine_similarity(&self.nodes[c].centroid, &self.nodes[group_b[0]].centroid);
            // Keep sizes within bounds while preferring correlation.
            let min = self.cfg.rtree.min_entries;
            let remaining = children.len() - i - 1;
            if group_a.len() + remaining < min || (ca >= cb && group_b.len() + remaining >= min) {
                group_a.push(c);
            } else {
                group_b.push(c);
            }
        }

        let level = self.nodes[node].level;
        let dim = self.nodes[node].centroid.len();
        self.nodes[node].children = group_a;
        let sibling = self.alloc(SemanticNode {
            id: 0,
            level,
            mbr: None,
            centroid: vec![0.0; dim],
            bloom: BloomFilter::with_family(
                self.cfg.bloom_bits,
                self.cfg.bloom_hashes,
                self.cfg.bloom_family,
            ),
            children: group_b,
            parent: self.nodes[node].parent,
            unit: None,
            leaf_count: 0,
        });
        for &c in self.nodes[sibling].children.clone().iter() {
            self.nodes[c].parent = Some(sibling);
        }
        self.refresh_node(node);
        self.refresh_node(sibling);

        match self.nodes[node].parent {
            Some(p) => {
                self.nodes[p].children.push(sibling);
                self.refresh_upward(p);
                self.split_if_needed(p);
            }
            None => {
                // Root split: grow the tree.
                let new_root = self.alloc(SemanticNode {
                    id: 0,
                    level: level + 1,
                    mbr: None,
                    centroid: vec![0.0; dim],
                    bloom: BloomFilter::with_family(
                        self.cfg.bloom_bits,
                        self.cfg.bloom_hashes,
                        self.cfg.bloom_family,
                    ),
                    children: vec![node, sibling],
                    parent: None,
                    unit: None,
                    leaf_count: 0,
                });
                self.nodes[node].parent = Some(new_root);
                self.nodes[sibling].parent = Some(new_root);
                self.root = new_root;
                self.refresh_node(new_root);
            }
        }
    }

    /// Merges `node` into a sibling when underflowing (§3.2.2, §4.1) and
    /// collapses single-child chains.
    fn merge_if_needed(&mut self, node: NodeId) {
        // An internal node with no children left is dissolved outright
        // (it can arise when the last leaf of a group is removed).
        if self.nodes[node].level > 0 && self.nodes[node].children.is_empty() {
            match self.nodes[node].parent {
                Some(parent) => {
                    self.nodes[parent].children.retain(|&c| c != node);
                    self.free.push(node);
                    self.merge_if_needed(parent);
                }
                None => {
                    // Empty root degenerates to an empty leaf.
                    let n = &mut self.nodes[node];
                    n.level = 0;
                    n.mbr = None;
                    n.unit = None;
                    n.leaf_count = 0;
                }
            }
            return;
        }
        let m = self.cfg.rtree.min_entries;
        let under = self.nodes[node].children.len() < m;
        if under {
            if let Some(parent) = self.nodes[node].parent {
                // Find the sibling with the most correlated centroid.
                let siblings: Vec<NodeId> = self.nodes[parent]
                    .children
                    .iter()
                    .copied()
                    .filter(|&s| s != node)
                    .collect();
                if let Some(&best) = siblings.iter().max_by(|&&a, &&b| {
                    let ca = cosine_similarity(&self.nodes[a].centroid, &self.nodes[node].centroid);
                    let cb = cosine_similarity(&self.nodes[b].centroid, &self.nodes[node].centroid);
                    ca.total_cmp(&cb)
                }) {
                    let orphans = std::mem::take(&mut self.nodes[node].children);
                    for &o in &orphans {
                        self.nodes[o].parent = Some(best);
                    }
                    self.nodes[best].children.extend(orphans);
                    self.nodes[parent].children.retain(|&c| c != node);
                    self.free.push(node);
                    self.refresh_node(best);
                    self.split_if_needed(best);
                    self.merge_if_needed(parent);
                    return;
                }
            }
        }
        // Height adjustment: "when a group becomes a child node of its
        // former grandparent … as a result of becoming the only child"
        // (§3.2.2) — collapse single-child roots.
        while self.nodes[self.root].level > 0 && self.nodes[self.root].children.len() == 1 {
            let old = self.root;
            let only = self.nodes[old].children[0];
            self.nodes[only].parent = None;
            self.root = only;
            self.free.push(old);
        }
        self.refresh_upward(node);
    }

    fn alloc(&mut self, mut node: SemanticNode) -> NodeId {
        if let Some(id) = self.free.pop() {
            node.id = id;
            self.nodes[id] = node;
            id
        } else {
            let id = self.nodes.len();
            node.id = id;
            self.nodes.push(node);
            id
        }
    }

    /// Recomputes one node's MBR, centroid, Bloom filter and leaf count
    /// from its children.
    fn refresh_node(&mut self, node: NodeId) {
        if self.nodes[node].level == 0 {
            return;
        }
        let children = self.nodes[node].children.clone();
        let (mbr, centroid, bloom, leaf_count) =
            summarize_children(&self.nodes, &children, &self.cfg);
        let n = &mut self.nodes[node];
        n.mbr = mbr;
        n.centroid = centroid;
        n.bloom = bloom;
        n.leaf_count = leaf_count;
    }

    /// Rebuilds every node's Bloom filter — and nothing else — from the
    /// storage units' current filters: leaves clone their unit's
    /// filter, internal nodes union their children bottom-up. This is
    /// the hash-family migration path for reopened persisted images;
    /// MBRs and centroids are deliberately left alone because their
    /// (possible) staleness is answer-relevant (§3.4) and migration
    /// must not act as a full index refresh.
    pub fn rebuild_blooms(&mut self, units: &[StorageUnit]) {
        let mut order: Vec<NodeId> = self.live_node_ids().collect();
        // Children before parents: leaves are level 0.
        order.sort_by_key(|&id| self.nodes[id].level);
        for id in order {
            let bloom = match self.nodes[id].unit {
                Some(u) => {
                    debug_assert_eq!(units[u].id, u, "unit ids must be dense");
                    units[u].bloom().clone()
                }
                // Degenerate empty node (e.g. a unit-less root): fresh
                // filter in the configured family.
                None if self.nodes[id].children.is_empty() => BloomFilter::with_family(
                    self.cfg.bloom_bits,
                    self.cfg.bloom_hashes,
                    self.cfg.bloom_family,
                ),
                None => BloomFilter::union_all(
                    self.nodes[id]
                        .children
                        .iter()
                        .map(|&c| &self.nodes[c].bloom),
                ),
            };
            self.nodes[id].bloom = bloom;
        }
    }

    /// Refreshes a node and all its ancestors.
    fn refresh_upward(&mut self, from: NodeId) {
        let mut cur = Some(from);
        while let Some(n) = cur {
            self.refresh_node(n);
            cur = self.nodes[n].parent;
        }
    }

    /// Re-synchronizes a leaf's summaries (MBR, centroid, Bloom filter)
    /// from its storage unit's current state and propagates the change
    /// upward — the index-side effect of a lazy replica update (§3.4:
    /// "When the number of changes is larger than some threshold, the
    /// index unit multicasts its latest replicas").
    pub fn update_leaf_summary(&mut self, unit: &StorageUnit) -> bool {
        let Some(leaf) = self.leaf_of_unit(unit.id) else {
            return false;
        };
        {
            let n = &mut self.nodes[leaf];
            n.mbr = unit.mbr().cloned();
            n.centroid = unit.centroid().to_vec();
            n.bloom = unit.bloom().clone();
        }
        if let Some(p) = self.nodes[leaf].parent {
            self.refresh_upward(p);
        }
        true
    }

    /// Validates structure: parent/child symmetry, MBR containment,
    /// level consistency, fan-out bounds (root exempt from the minimum).
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut stack = vec![self.root];
        while let Some(n) = stack.pop() {
            let node = &self.nodes[n];
            if node.level > 0 {
                if node.children.is_empty() {
                    return Err(format!("index node {n} has no children"));
                }
                if node.children.len() > self.cfg.rtree.max_entries {
                    return Err(format!(
                        "node {n} overflows: {} > M={}",
                        node.children.len(),
                        self.cfg.rtree.max_entries
                    ));
                }
                let mut leaves = 0;
                for &c in &node.children {
                    let child = &self.nodes[c];
                    if child.parent != Some(n) {
                        return Err(format!("child {c} of {n} has wrong parent"));
                    }
                    if child.level >= node.level {
                        return Err(format!("child {c} level >= parent {n} level"));
                    }
                    if let (Some(pm), Some(cm)) = (&node.mbr, &child.mbr) {
                        if !pm.contains_rect(cm) {
                            return Err(format!("node {n} MBR does not contain child {c}"));
                        }
                    }
                    leaves += child.leaf_count;
                    stack.push(c);
                }
                if leaves != node.leaf_count {
                    return Err(format!(
                        "node {n} leaf_count {} != sum of children {leaves}",
                        node.leaf_count
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Computes (MBR, centroid, Bloom union, leaf count) over children.
fn summarize_children(
    nodes: &[SemanticNode],
    children: &[NodeId],
    cfg: &SmartStoreConfig,
) -> (Option<Rect>, Vec<f64>, BloomFilter, usize) {
    assert!(!children.is_empty(), "summarize_children: empty child set");
    let dim = nodes[children[0]].centroid.len();
    let mut mbr: Option<Rect> = None;
    let mut centroid = vec![0.0; dim];
    let mut bloom = BloomFilter::with_family(cfg.bloom_bits, cfg.bloom_hashes, cfg.bloom_family);
    let mut leaf_count = 0usize;
    for &c in children {
        let child = &nodes[c];
        if let Some(cm) = &child.mbr {
            mbr = Some(match mbr.take() {
                Some(m) => m.union(cm),
                None => cm.clone(),
            });
        }
        let w = child.leaf_count.max(1) as f64;
        for (acc, &x) in centroid.iter_mut().zip(&child.centroid) {
            *acc += w * x;
        }
        bloom.union_in_place(&child.bloom);
        leaf_count += child.leaf_count;
    }
    let total = leaf_count.max(1) as f64;
    for acc in &mut centroid {
        *acc /= total;
    }
    (mbr, centroid, bloom, leaf_count)
}

#[cfg(test)]
#[allow(clippy::disallowed_methods)] // tests may unwrap
mod tests {
    use super::*;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    /// Builds `n_units` storage units over a clustered population.
    fn units(n_units: usize, n_files: usize, seed: u64) -> Vec<StorageUnit> {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files,
            n_clusters: n_units,
            seed,
            ..GeneratorConfig::default()
        });
        let vectors: Vec<Vec<f64>> = pop.files.iter().map(|f| f.attr_vector().to_vec()).collect();
        let assignment = crate::grouping::partition_balanced(&vectors, n_units, 3, seed);
        let mut buckets: Vec<Vec<smartstore_trace::FileMetadata>> = vec![Vec::new(); n_units];
        for (f, &a) in pop.files.into_iter().zip(assignment.iter()) {
            buckets[a].push(f);
        }
        buckets
            .into_iter()
            .enumerate()
            .map(|(i, files)| StorageUnit::new(i, 1024, 7, files))
            .collect()
    }

    fn tree_with(n_units: usize) -> (SemanticRTree, Vec<StorageUnit>) {
        let us = units(n_units, n_units * 50, 17);
        let t = SemanticRTree::build(&us, &SmartStoreConfig::default());
        (t, us)
    }

    #[test]
    fn build_produces_valid_tree() {
        let (t, us) = tree_with(20);
        t.check_invariants().unwrap();
        let s = t.stats();
        assert!(s.height >= 2);
        assert_eq!(t.node(t.root()).leaf_count, us.len());
    }

    #[test]
    fn all_units_reachable() {
        let (t, us) = tree_with(16);
        for u in &us {
            assert!(t.leaf_of_unit(u.id).is_some(), "unit {} lost", u.id);
        }
    }

    #[test]
    fn root_mbr_covers_every_unit() {
        let (t, us) = tree_with(12);
        let root_mbr = t.node(t.root()).mbr.clone().unwrap();
        for u in &us {
            assert!(root_mbr.contains_rect(u.mbr().unwrap()));
        }
    }

    #[test]
    fn range_route_finds_covering_units() {
        let (t, us) = tree_with(15);
        // Query box = exactly one unit's MBR: that unit must be routed.
        let target = &us[3];
        let m = target.mbr().unwrap();
        let route = t.route_range(m.lo(), m.hi());
        assert!(route.target_units.contains(&3));
        assert!(route.nodes_visited >= 2);
    }

    #[test]
    fn point_route_reaches_owner() {
        let (t, us) = tree_with(10);
        let name = us[7].files()[0].name.clone();
        let route = t.route_point(&name);
        assert!(route.target_units.contains(&7));
        assert!(route.filters_probed > 0);
    }

    #[test]
    fn point_route_prunes_missing_names() {
        let (t, _) = tree_with(10);
        let route = t.route_point("ghost_file_xyz");
        // Index-unit union filters saturate (hundreds of names in 1024
        // bits) so internal pruning is weak, but the per-leaf filters
        // are sparse: a missing name must reach (almost) no storage
        // units. The paper reports the same effect as an ~88% hit rate
        // rather than perfect pruning (§5.4.1).
        assert!(
            route.target_units.len() <= 2,
            "missing name claimed by {} units",
            route.target_units.len()
        );
    }

    #[test]
    fn topk_route_orders_by_mbr_distance() {
        let (t, us) = tree_with(12);
        let q = us[5].centroid().to_vec();
        let (order, visited) = t.route_topk(&q);
        assert_eq!(order.len(), 12, "every unit eventually ranked");
        assert!(visited >= 12);
        for w in order.windows(2) {
            assert!(w[0].1 <= w[1].1, "best-first order violated");
        }
    }

    #[test]
    fn most_correlated_group_prefers_own_group() {
        let (t, us) = tree_with(18);
        for u in us.iter().take(6) {
            let leaf = t.leaf_of_unit(u.id).unwrap();
            let own = t.group_of_leaf(leaf);
            let picked = t.most_correlated_group(u.centroid());
            // The unit's own group should usually win; at minimum the
            // pick must be a live level-1 node.
            assert!(t.first_level_index_units().contains(&picked));
            let _ = own;
        }
    }

    #[test]
    fn insert_unit_grows_tree() {
        let (mut t, us) = tree_with(10);
        let mut extra = units(1, 40, 999).remove(0);
        extra.id = 100;
        t.insert_unit(&extra);
        t.check_invariants().unwrap();
        assert!(t.leaf_of_unit(100).is_some());
        assert_eq!(t.node(t.root()).leaf_count, us.len() + 1);
    }

    #[test]
    fn insert_many_units_keeps_invariants() {
        let (mut t, _) = tree_with(8);
        let extras = units(20, 600, 321);
        for (i, mut u) in extras.into_iter().enumerate() {
            u.id = 200 + i;
            t.insert_unit(&u);
            t.check_invariants().unwrap();
        }
        assert_eq!(t.node(t.root()).leaf_count, 28);
    }

    #[test]
    fn remove_unit_shrinks_tree() {
        let (mut t, us) = tree_with(12);
        assert!(t.remove_unit(4));
        t.check_invariants().unwrap();
        assert!(t.leaf_of_unit(4).is_none());
        assert_eq!(t.node(t.root()).leaf_count, us.len() - 1);
        assert!(!t.remove_unit(4), "double remove returns false");
    }

    #[test]
    fn remove_down_to_one_unit() {
        let (mut t, us) = tree_with(8);
        for u in us.iter().skip(1) {
            assert!(t.remove_unit(u.id));
            t.check_invariants().unwrap();
        }
        assert!(t.leaf_of_unit(us[0].id).is_some());
        assert_eq!(t.node(t.root()).leaf_count, 1);
    }

    #[test]
    fn first_level_groups_partition_leaves() {
        let (t, us) = tree_with(24);
        let groups = t.first_level_index_units();
        let total: usize = groups.iter().map(|&g| t.node(g).leaf_count).sum();
        assert_eq!(total, us.len());
    }

    #[test]
    fn single_unit_tree() {
        let us = units(1, 30, 5);
        let t = SemanticRTree::build(&us, &SmartStoreConfig::default());
        t.check_invariants().unwrap();
        assert_eq!(t.stats().height, 1);
        let route = t.route_point(&us[0].files()[0].name);
        assert_eq!(route.target_units, vec![0]);
    }

    #[test]
    fn semantic_grouping_beats_random_on_cluster_span() {
        // Files from one planted cluster should concentrate in few
        // first-level groups when units are semantically built.
        let us = units(20, 1000, 77);
        let t = SemanticRTree::build(&us, &SmartStoreConfig::default());
        // Pick the planted cluster with the most files.
        let mut counts: std::collections::HashMap<u32, usize> = Default::default();
        for u in &us {
            for f in u.files() {
                if let Some(c) = f.truth_cluster {
                    *counts.entry(c).or_default() += 1;
                }
            }
        }
        let (&big, _) = counts.iter().max_by_key(|&(_, &c)| c).unwrap();
        let mut groups_hit: Vec<NodeId> = us
            .iter()
            .filter(|u| u.files().iter().any(|f| f.truth_cluster == Some(big)))
            .map(|u| t.group_of_leaf(t.leaf_of_unit(u.id).unwrap()))
            .collect();
        groups_hit.sort_unstable();
        groups_hit.dedup();
        let n_groups = t.first_level_index_units().len();
        assert!(
            groups_hit.len() <= n_groups,
            "sanity: {} groups hit of {n_groups}",
            groups_hit.len()
        );
    }
}
