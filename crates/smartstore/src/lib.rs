//! SmartStore: decentralized semantic-aware metadata organization
//! (Hua et al., SC '09).
//!
//! Files are grouped by the semantic correlation of their
//! multi-dimensional metadata attributes instead of by directory
//! namespace. Latent Semantic Indexing (truncated SVD) measures
//! correlation; correlated metadata aggregates into *storage units*
//! (leaf nodes, one per metadata server) which are recursively grouped
//! into a *semantic R-tree* whose non-leaf *index units* carry Minimum
//! Bounding Rectangles, semantic centroids and unioned Bloom filters.
//! Point, range and top-k queries then touch one or a few semantically
//! related groups instead of brute-forcing every server.
//!
//! Module map (paper section in parentheses):
//!
//! * [`config`] — all tunables with the paper's defaults (§5.1);
//! * [`mod@unit`] — storage units: local metadata, Bloom filter, semantic
//!   vector, MBR (§2.3);
//! * [`grouping`] — LSI-driven iterative semantic grouping and the
//!   optimal-threshold search (§3.1, Fig. 11);
//! * [`tree`] — the semantic R-tree: construction, unit insertion and
//!   deletion, split/merge, local query evaluation (§3.1.2, §3.2, §4.1);
//! * [`mapping`] — index-unit → storage-unit mapping and root
//!   multi-mapping (§4.2–4.3);
//! * [`routing`] — on-line multicast routing vs off-line pre-processing
//!   with replicated first-level index vectors (§3.3–3.4, Fig. 13);
//! * [`query`] — the `&self` read path: [`query::QueryOptions`] and the
//!   [`query::QueryEngine`] shared view (many concurrent readers, one
//!   journaling writer); the `smartstore-service` crate lifts it into a
//!   wire protocol over sharded metadata servers;
//! * [`versioning`] — consistency via backward-rolled versions (§4.4,
//!   Fig. 14, Tables 5–6);
//! * [`autoconfig`] — automatic configuration of per-attribute-subset
//!   semantic R-trees (§2.4);
//! * [`system`] — the assembled system: build from a trace population,
//!   execute query workloads, account latency/messages/space (§5); also
//!   home of the [`system::Journal`] write-ahead hook and the
//!   [`system::SystemParts`] export/import used by the durable
//!   `smartstore-persist` crate (snapshots + WAL + crash recovery);
//! * [`cache`] — semantic-aware caching with top-k prefetching (§1.1);
//! * [`replay`] — event-driven batch replay on the cluster simulator.
//!
//! Durability tunables (WAL fsync batching, compaction threshold) live
//! in [`config::PersistConfig`]; the persistence implementation itself
//! is the separate `smartstore-persist` crate so this core stays
//! storage-agnostic.

pub mod autoconfig;
pub mod cache;
pub mod config;
pub mod grouping;
pub mod mapping;
pub mod query;
pub mod replay;
pub mod routing;
pub mod system;
pub mod tree;
pub mod unit;
pub mod versioning;

pub use config::{PersistConfig, SmartStoreConfig};
pub use query::{QueryEngine, QueryOptions};
pub use smartstore_bloom::HashFamily;
pub use system::{
    DeltaParts, DirtyUnits, Journal, QueryOutcome, SmartStoreSystem, SystemParts, SystemStats,
};

pub use tree::SemanticRTree;
pub use unit::StorageUnit;
