//! Query routing: on-line multicast vs off-line pre-processing
//! (§3.3–3.4, Fig. 13).
//!
//! Both modes start at a random *home unit* ("a user sends a query
//! randomly to a storage unit", §2.2):
//!
//! * **On-line** — the home unit has no routing knowledge: it forwards
//!   to its father index unit, which "multicasts query messages to its
//!   father and sibling nodes" so every first-level group is consulted;
//!   target groups then probe their member units. Message-heavy.
//! * **Off-line** — "each storage unit locally maintains a replica of
//!   the semantic vectors of all index units": the home unit runs LSI
//!   over the request vector against the replicated first-level vectors
//!   and forwards the query straight to the most correlated index
//!   unit(s). One targeted hop instead of a flood.
//!
//! The functions here turn a tree [`Route`] plus per-unit probe work
//! into message counts and a critical-path latency under the
//! [`CostModel`]; parallel branches (multicast fan-out) overlap, serial
//! steps add.

use crate::mapping::IndexMapping;
use crate::tree::{Route, SemanticRTree};
use crate::unit::LocalWork;
use smartstore_simnet::CostModel;

/// Which query path is in force.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RouteMode {
    /// Multicast discovery (§3.3).
    Online,
    /// Replicated-index direct routing (§3.4).
    Offline,
}

impl RouteMode {
    /// Both modes.
    pub const ALL: [RouteMode; 2] = [RouteMode::Online, RouteMode::Offline];
}

impl std::fmt::Display for RouteMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RouteMode::Online => "on-line",
            RouteMode::Offline => "off-line",
        })
    }
}

/// Cost of one routed query.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct QueryCost {
    /// Critical-path latency in nanoseconds.
    pub latency_ns: u64,
    /// Total network messages.
    pub messages: u64,
    /// Storage units that evaluated the query.
    pub units_probed: usize,
    /// First-level group hops beyond the first (Fig. 8 metric).
    pub group_hops: usize,
}

/// Size assumptions for query/response payloads (bytes).
const QUERY_BYTES: usize = 128;
const RESULT_BYTES: usize = 512;

/// Computes the cost of a complex (range/top-k) query.
///
/// `route` is the tree's routing answer; `unit_work` is the local probe
/// work actually performed per target unit; `n_groups` the number of
/// first-level index units in the system.
pub fn complex_query_cost(
    mode: RouteMode,
    tree: &SemanticRTree,
    mapping: &IndexMapping,
    route: &Route,
    unit_work: &[(usize, LocalWork)],
    n_groups: usize,
    cost: &CostModel,
) -> QueryCost {
    // `mapping` is in the signature for future host-aware accounting
    // (distinct hosts could batch messages).
    let _ = mapping;
    let hop = cost.wire_ns(QUERY_BYTES);
    let reply = cost.wire_ns(RESULT_BYTES);
    let index_probe = cost.per_index_node_ns * route.nodes_visited as u64
        + cost.per_filter_ns * route.filters_probed as u64;
    // Max over parallel unit probes (units work concurrently), plus
    // dispatch at each.
    let max_unit_work = unit_work
        .iter()
        .map(|(_, w)| {
            cost.per_record_ns * w.records as u64
                + cost.per_filter_ns * w.filters as u64
                + cost.per_msg_cpu_ns
        })
        .max()
        .unwrap_or(0);
    let n_targets = unit_work.len() as u64;
    let target_groups = route.group_hops as u64 + 1;

    match mode {
        RouteMode::Online => {
            // client→home, home→father, father multicasts to its own
            // sibling *units* and to all other first-level groups
            // ("multicasts query messages to its father and sibling
            // nodes", §3.3.1), matching groups→member units,
            // units→home, home→client.
            let avg_group = (tree.node(tree.root()).leaf_count / n_groups.max(1)).max(1) as u64;
            let messages = 1 // client → home
                + 1 // home → its father index unit
                + avg_group // father → sibling units of the home leaf
                + (n_groups.saturating_sub(1)) as u64 // multicast to sibling groups
                + n_targets // group hosts → target units
                + n_targets // target units → home (results)
                + 1; // home → client
                     // Critical path: the multicast branches run in parallel.
            let latency = hop // client → home
                + hop // home → father
                + hop // father → farthest sibling group (parallel)
                + index_probe // index-unit MBR/filter checks
                + hop // group host → target unit (parallel)
                + max_unit_work
                + reply // unit → home
                + reply; // home → client
            QueryCost {
                latency_ns: latency,
                messages,
                units_probed: unit_work.len(),
                group_hops: route.group_hops,
            }
        }
        RouteMode::Offline => {
            // Home performs a local LSI match over the replicated
            // first-level vectors (no network), then messages only the
            // target groups.
            let local_match = cost.per_index_node_ns * n_groups as u64;
            let messages = 1 // client → home
                + target_groups // home → target group hosts
                + n_targets // hosts → member units
                + n_targets // units → home
                + 1; // home → client
            let latency = hop // client → home
                + local_match
                + hop // home → target group host (parallel over groups)
                + index_probe.min(cost.per_index_node_ns * 4) // local subtree checks only
                + hop // host → unit
                + max_unit_work
                + reply
                + reply;
            QueryCost {
                latency_ns: latency,
                messages,
                units_probed: unit_work.len(),
                group_hops: route.group_hops,
            }
        }
    }
}

/// Cost of a filename point query: Bloom-guided descent, then exact
/// lookup at the positive units.
///
/// Record accounting follows the *indexed-lookup* rule (see
/// [`LocalWork`]): each positive unit resolves the name through its
/// name→slot map, so `records` is 1 at a unit that holds the file and
/// 0 at a Bloom-false-positive unit — not the prefix-scan length the
/// pre-columnar store paid. Simulated point latencies are accordingly
/// lower than pre-columnar reports for the same trace.
pub fn point_query_cost(
    route: &Route,
    unit_work: &[(usize, LocalWork)],
    cost: &CostModel,
) -> QueryCost {
    let hop = cost.wire_ns(QUERY_BYTES);
    let reply = cost.wire_ns(RESULT_BYTES);
    let filter_probes = cost.per_filter_ns * route.filters_probed as u64;
    let max_unit_work = unit_work
        .iter()
        .map(|(_, w)| cost.per_record_ns * w.records as u64 + cost.per_filter_ns * w.filters as u64)
        .max()
        .unwrap_or(0);
    let messages = 1 + route.target_units.len() as u64 * 2 + 1;
    let latency = hop + filter_probes + hop + max_unit_work + reply + reply;
    QueryCost {
        latency_ns: latency,
        messages,
        units_probed: unit_work.len(),
        group_hops: route.group_hops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmartStoreConfig;
    use crate::grouping::partition_balanced_flat;
    use crate::mapping::map_index_units;
    use crate::unit::StorageUnit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn fixture(n_units: usize) -> (SemanticRTree, IndexMapping, Vec<StorageUnit>) {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: n_units * 40,
            n_clusters: n_units,
            seed: 31,
            ..GeneratorConfig::default()
        });
        let table = smartstore_trace::attr_table(&pop.files);
        let assignment =
            partition_balanced_flat(&table, smartstore_trace::ATTR_DIMS, n_units, 3, 31);
        let mut buckets: Vec<Vec<smartstore_trace::FileMetadata>> = vec![Vec::new(); n_units];
        for (f, &a) in pop.files.into_iter().zip(assignment.iter()) {
            buckets[a].push(f);
        }
        let units: Vec<StorageUnit> = buckets
            .into_iter()
            .enumerate()
            .map(|(i, files)| StorageUnit::new(i, 1024, 7, files))
            .collect();
        let tree = SemanticRTree::build(&units, &SmartStoreConfig::default());
        let mapping = map_index_units(&tree, &mut StdRng::seed_from_u64(1));
        (tree, mapping, units)
    }

    fn sample_route(
        tree: &SemanticRTree,
        units: &[StorageUnit],
    ) -> (Route, Vec<(usize, LocalWork)>) {
        // A narrow box around a single file so the route targets a small
        // subset of groups (offline beats online strictly only then; a
        // query spanning every group costs the same either way).
        let v = units[0].files()[0].attr_vector();
        let lo: Vec<f64> = v.iter().map(|x| x - 1e-6).collect();
        let hi: Vec<f64> = v.iter().map(|x| x + 1e-6).collect();
        let m = smartstore_rtree::Rect::new(lo, hi);
        let route = tree.route_range(m.lo(), m.hi());
        let work: Vec<(usize, LocalWork)> = route
            .target_units
            .iter()
            .map(|&u| {
                let (_, w) = units[u].range_query(m.lo(), m.hi());
                (u, w)
            })
            .collect();
        (route, work)
    }

    #[test]
    fn offline_sends_fewer_messages_than_online() {
        let (tree, mapping, units) = fixture(24);
        let (route, work) = sample_route(&tree, &units);
        let n_groups = tree.first_level_index_units().len();
        let cost = CostModel::default();
        let online = complex_query_cost(
            RouteMode::Online,
            &tree,
            &mapping,
            &route,
            &work,
            n_groups,
            &cost,
        );
        let offline = complex_query_cost(
            RouteMode::Offline,
            &tree,
            &mapping,
            &route,
            &work,
            n_groups,
            &cost,
        );
        assert!(
            online.messages > offline.messages,
            "online {} must exceed offline {}",
            online.messages,
            offline.messages
        );
    }

    #[test]
    fn offline_latency_not_worse() {
        let (tree, mapping, units) = fixture(24);
        let (route, work) = sample_route(&tree, &units);
        let n_groups = tree.first_level_index_units().len();
        let cost = CostModel::default();
        let online = complex_query_cost(
            RouteMode::Online,
            &tree,
            &mapping,
            &route,
            &work,
            n_groups,
            &cost,
        );
        let offline = complex_query_cost(
            RouteMode::Offline,
            &tree,
            &mapping,
            &route,
            &work,
            n_groups,
            &cost,
        );
        assert!(offline.latency_ns <= online.latency_ns);
    }

    #[test]
    fn online_messages_scale_with_group_count() {
        let (tree_s, map_s, units_s) = fixture(12);
        let (tree_l, map_l, units_l) = fixture(48);
        let cost = CostModel::default();
        let (rs, ws) = sample_route(&tree_s, &units_s);
        let (rl, wl) = sample_route(&tree_l, &units_l);
        let ms = complex_query_cost(
            RouteMode::Online,
            &tree_s,
            &map_s,
            &rs,
            &ws,
            tree_s.first_level_index_units().len(),
            &cost,
        );
        let ml = complex_query_cost(
            RouteMode::Online,
            &tree_l,
            &map_l,
            &rl,
            &wl,
            tree_l.first_level_index_units().len(),
            &cost,
        );
        assert!(
            ml.messages > ms.messages,
            "{} vs {}",
            ml.messages,
            ms.messages
        );
    }

    #[test]
    fn point_query_cost_counts_filters() {
        let (tree, _mapping, units) = fixture(10);
        let name = units[2].files()[0].name.clone();
        let route = tree.route_point(&name);
        let work: Vec<(usize, LocalWork)> = route
            .target_units
            .iter()
            .map(|&u| {
                let (_, w) = units[u].point_query(&name);
                (u, w)
            })
            .collect();
        let qc = point_query_cost(&route, &work, &CostModel::default());
        assert!(qc.latency_ns > 0);
        assert!(qc.messages >= 2);
        assert!(qc.units_probed >= 1);
    }

    #[test]
    fn empty_target_set_still_has_routing_cost() {
        let (tree, mapping, units) = fixture(10);
        let dim = units[0].centroid().len();
        // Far-away query box: routed nowhere.
        let lo = vec![1e9; dim];
        let hi = vec![1e9 + 1.0; dim];
        let route = tree.route_range(&lo, &hi);
        assert!(route.target_units.is_empty());
        let qc = complex_query_cost(
            RouteMode::Offline,
            &tree,
            &mapping,
            &route,
            &[],
            tree.first_level_index_units().len(),
            &CostModel::default(),
        );
        assert!(qc.latency_ns > 0, "root check alone costs something");
        assert_eq!(qc.units_probed, 0);
    }
}
