//! The shared-read query path: [`QueryOptions`] + [`QueryEngine`].
//!
//! The paper's deployment is a *service*: many clients issue point,
//! range and top-k queries concurrently against metadata servers while
//! a change stream trickles in (§2.2, §5.4). The original entry points
//! (`SmartStoreSystem::{point,range,topk}_query`) took `&mut self`,
//! which serialized every reader behind one exclusive borrow even
//! though query evaluation never mutates: storage units are the source
//! of truth, index summaries go stale *only* through the write path,
//! and the lazy replica refresh (§3.4) is an explicit write-side step
//! ([`SmartStoreSystem::apply_change`]), not a read-side cache fill.
//!
//! [`QueryEngine`] makes that sharing explicit: it is a cheap `&self`
//! view over a system, so any number of readers can evaluate queries
//! concurrently (one writer journals changes between query epochs —
//! the swissarmyhammer-style leader-writes/concurrent-reads shape).
//! [`QueryOptions`] replaces the loose `RouteMode` + `k` argument
//! soup with one wire-encodable options struct shared by the in-process
//! API and the `smartstore-service` request protocol.
//!
//! Evaluation itself runs on the storage units' *columnar* read path
//! (flat SoA coordinate scans, bounded-heap top-k, indexed point
//! lookups — see [`crate::unit`]); the engine, the semantic cache's
//! prefetch queries, and the service layer's shard fan-out all inherit
//! it through these entry points.

use crate::routing::RouteMode;
use crate::system::{QueryOutcome, SmartStoreSystem};

/// Per-query knobs, shared by every query kind.
///
/// Replaces the loose `RouteMode` + `k` arguments of the original
/// query methods; travels inside `smartstore-service` requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct QueryOptions {
    /// Routing mode: on-line multicast or off-line replicated-index
    /// direct routing (§3.3–3.4).
    pub mode: RouteMode,
    /// Result-set size for top-k queries (the paper evaluates k = 8);
    /// ignored by point and range queries.
    pub k: usize,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self {
            mode: RouteMode::Offline,
            k: 8,
        }
    }
}

impl QueryOptions {
    /// Off-line (replicated-index direct) routing with the default k.
    pub fn offline() -> Self {
        Self::default()
    }

    /// On-line (multicast discovery) routing with the default k.
    pub fn online() -> Self {
        Self {
            mode: RouteMode::Online,
            ..Self::default()
        }
    }

    /// Options for an explicit routing mode.
    pub fn with_mode(mode: RouteMode) -> Self {
        Self {
            mode,
            ..Self::default()
        }
    }

    /// Sets the top-k result-set size.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }
}

/// A shared read-only view over a [`SmartStoreSystem`] that evaluates
/// queries through `&self`.
///
/// Obtain one with [`SmartStoreSystem::query`]. The view is `Copy`;
/// hand clones to as many threads as you like:
///
/// ```
/// # use smartstore::{SmartStoreConfig, SmartStoreSystem};
/// # use smartstore::query::QueryOptions;
/// # use smartstore_trace::{GeneratorConfig, MetadataPopulation};
/// # let pop = MetadataPopulation::generate(GeneratorConfig {
/// #     n_files: 200, n_clusters: 4, seed: 1, ..GeneratorConfig::default() });
/// # let name = pop.files[0].name.clone();
/// let sys = SmartStoreSystem::build(pop.files, 4, SmartStoreConfig::default(), 1);
/// let engine = sys.query();
/// std::thread::scope(|s| {
///     s.spawn(|| engine.point(&name));
///     s.spawn(|| engine.point(&name));
/// });
/// ```
#[derive(Clone, Copy, Debug)]
pub struct QueryEngine<'a> {
    sys: &'a SmartStoreSystem,
}

impl<'a> QueryEngine<'a> {
    pub(crate) fn new(sys: &'a SmartStoreSystem) -> Self {
        Self { sys }
    }

    /// The system under the view.
    pub fn system(&self) -> &'a SmartStoreSystem {
        self.sys
    }

    /// Filename point query via the Bloom-filter hierarchy (§3.3.3).
    /// Routing is Bloom-guided and identical in both modes, so point
    /// queries take no options.
    pub fn point(&self, name: &str) -> QueryOutcome {
        self.sys.eval_point(name)
    }

    /// Multi-dimensional range query over the projected attribute
    /// space (§3.3.1).
    pub fn range(&self, lo: &[f64], hi: &[f64], opts: &QueryOptions) -> QueryOutcome {
        self.sys.eval_range(lo, hi, opts.mode)
    }

    /// Top-`opts.k` nearest-neighbour query with MaxD pruning (§3.3.2).
    pub fn topk(&self, point: &[f64], opts: &QueryOptions) -> QueryOutcome {
        self.sys.eval_topk(point, opts.k, opts.mode)
    }

    /// Top-k returning `(file_id, squared distance)` pairs in ascending
    /// `(distance, id)` order — the form a distributed merge needs:
    /// per-shard scored lists re-merge deterministically into exactly
    /// the answer a single system would give.
    pub fn topk_scored(
        &self,
        point: &[f64],
        opts: &QueryOptions,
    ) -> (Vec<(u64, f64)>, QueryOutcome) {
        self.sys.eval_topk_scored(point, opts.k, opts.mode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmartStoreConfig;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn fixture() -> (SmartStoreSystem, MetadataPopulation) {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: 800,
            n_clusters: 8,
            seed: 42,
            ..GeneratorConfig::default()
        });
        let sys = SmartStoreSystem::build(pop.files.clone(), 8, SmartStoreConfig::default(), 42);
        (sys, pop)
    }

    #[test]
    fn options_builder_composes() {
        let o = QueryOptions::online().with_k(3);
        assert_eq!(o.mode, RouteMode::Online);
        assert_eq!(o.k, 3);
        assert_eq!(QueryOptions::offline(), QueryOptions::default());
    }

    #[test]
    fn engine_matches_direct_eval() {
        let (sys, pop) = fixture();
        let e = sys.query();
        let name = &pop.files[17].name;
        assert_eq!(e.point(name), sys.eval_point(name));
        let v = pop.files[17].attr_vector();
        let lo: Vec<f64> = v.iter().map(|x| x - 0.5).collect();
        let hi: Vec<f64> = v.iter().map(|x| x + 0.5).collect();
        assert_eq!(
            e.range(&lo, &hi, &QueryOptions::offline()),
            sys.eval_range(&lo, &hi, RouteMode::Offline)
        );
        assert_eq!(
            e.topk(&v, &QueryOptions::online().with_k(5)),
            sys.eval_topk(&v, 5, RouteMode::Online)
        );
    }

    #[test]
    fn scored_topk_agrees_with_plain_topk() {
        let (sys, pop) = fixture();
        let e = sys.query();
        let v = pop.files[3].attr_vector();
        let opts = QueryOptions::offline().with_k(6);
        let plain = e.topk(&v, &opts);
        let (scored, out) = e.topk_scored(&v, &opts);
        let ids: Vec<u64> = scored.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, plain.file_ids);
        assert_eq!(out.cost, plain.cost);
        for w in scored.windows(2) {
            assert!(w[0].1 <= w[1].1, "scored order must be ascending");
        }
    }
}
