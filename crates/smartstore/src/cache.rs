//! Semantic-aware metadata caching (§1.1, §1.2).
//!
//! "Semantic-aware caching, which leverages metadata semantic
//! correlation and combines pre-processing and prefetching that is based
//! on range queries … and top-k Nearest Neighbor queries, will be
//! sufficiently effective in reducing the working sets and increasing
//! cache hit rates." And concretely: "when a file is visited, we can
//! execute a top-k query to find its k most correlated files to be
//! prefetched."
//!
//! [`SemanticCache`] is a fixed-capacity LRU metadata cache with a
//! pluggable prefetch policy; [`PrefetchPolicy::TopK`] issues a top-k
//! query through the SmartStore system on every miss and admits the
//! correlated files.

use crate::query::QueryOptions;
use crate::system::SmartStoreSystem;
use std::collections::HashMap;

/// What to prefetch on a cache miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrefetchPolicy {
    /// No prefetching: plain LRU.
    None,
    /// On each miss, fetch the missed file's `k` most semantically
    /// correlated files (a top-k query) into the cache.
    TopK {
        /// Number of correlated files fetched per miss.
        k: usize,
    },
}

/// Hit/miss accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// References that hit.
    pub hits: u64,
    /// References that missed.
    pub misses: u64,
    /// Prefetch queries issued.
    pub prefetch_queries: u64,
    /// Entries admitted by prefetching.
    pub prefetched: u64,
}

impl CacheStats {
    /// Hit rate in [0, 1]; 0 for an empty run.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A fixed-capacity LRU metadata cache with semantic prefetching.
#[derive(Debug)]
pub struct SemanticCache {
    capacity: usize,
    policy: PrefetchPolicy,
    /// id → recency stamp; eviction removes the smallest stamp.
    entries: HashMap<u64, u64>,
    clock: u64,
    stats: CacheStats,
}

impl SemanticCache {
    /// Creates a cache holding at most `capacity` metadata entries.
    ///
    /// # Panics
    /// If `capacity == 0`.
    pub fn new(capacity: usize, policy: PrefetchPolicy) -> Self {
        assert!(capacity > 0, "SemanticCache: capacity must be positive");
        Self {
            capacity,
            policy,
            entries: HashMap::new(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accounting so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// True if `id` is currently cached (no side effects).
    pub fn contains(&self, id: u64) -> bool {
        self.entries.contains_key(&id)
    }

    fn touch(&mut self, id: u64) {
        self.clock += 1;
        self.entries.insert(id, self.clock);
        while self.entries.len() > self.capacity {
            let Some((&victim, _)) = self
                .entries // lint:allow(D002) -- clock stamps are unique, so the minimum is unique
                .iter()
                .min_by_key(|&(_, &stamp)| stamp)
            else {
                break;
            };
            self.entries.remove(&victim);
        }
    }

    /// References file `id` (whose current attribute vector is `attrs`):
    /// records hit/miss, admits the entry, and on a miss runs the
    /// prefetch policy through `sys`'s shared read path (queries are
    /// `&self`, so a cache can prefetch while other readers query; the
    /// top-k prefetch itself rides the units' columnar bounded-heap
    /// scan, so a miss costs O(n log k) coordinate work, not a
    /// re-projection of every record). Returns `true` on a hit.
    pub fn reference(&mut self, sys: &SmartStoreSystem, id: u64, attrs: &[f64]) -> bool {
        let hit = self.entries.contains_key(&id);
        if hit {
            self.stats.hits += 1;
            self.touch(id);
            return true;
        }
        self.stats.misses += 1;
        self.touch(id);
        if let PrefetchPolicy::TopK { k } = self.policy {
            let out = sys.query().topk(attrs, &QueryOptions::offline().with_k(k));
            self.stats.prefetch_queries += 1;
            for fid in out.file_ids {
                if fid != id && !self.entries.contains_key(&fid) {
                    self.stats.prefetched += 1;
                    self.touch(fid);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmartStoreConfig;
    use smartstore_trace::{GeneratorConfig, MetadataPopulation};

    fn fixture() -> (SmartStoreSystem, MetadataPopulation) {
        let pop = MetadataPopulation::generate(GeneratorConfig {
            n_files: 1500,
            n_clusters: 15,
            clustered_fraction: 0.9,
            seed: 55,
            ..GeneratorConfig::default()
        });
        let sys = SmartStoreSystem::build(pop.files.clone(), 15, SmartStoreConfig::default(), 55);
        (sys, pop)
    }

    #[test]
    fn lru_evicts_oldest() {
        let (sys, pop) = fixture();
        let mut c = SemanticCache::new(3, PrefetchPolicy::None);
        for id in 0..4u64 {
            c.reference(&sys, id, &pop.files[id as usize].attr_vector());
        }
        assert_eq!(c.len(), 3);
        assert!(!c.contains(0), "oldest entry evicted");
        assert!(c.contains(3));
    }

    #[test]
    fn repeat_references_hit() {
        let (sys, pop) = fixture();
        let mut c = SemanticCache::new(10, PrefetchPolicy::None);
        let v = pop.files[7].attr_vector();
        assert!(!c.reference(&sys, 7, &v));
        assert!(c.reference(&sys, 7, &v));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn topk_prefetch_admits_correlated_files() {
        let (sys, pop) = fixture();
        let mut c = SemanticCache::new(100, PrefetchPolicy::TopK { k: 8 });
        let f = &pop.files[100];
        c.reference(&sys, f.file_id, &f.attr_vector());
        assert!(c.stats().prefetched > 0, "miss must trigger prefetch");
        assert!(c.len() > 1);
    }

    #[test]
    fn semantic_prefetch_beats_lru_on_correlated_stream() {
        let (sys, pop) = fixture();
        // Stream: walk cluster members in bursts.
        let mut stream: Vec<&smartstore_trace::FileMetadata> = Vec::new();
        let mut by_cluster: HashMap<u32, Vec<&smartstore_trace::FileMetadata>> = HashMap::new();
        for f in &pop.files {
            if let Some(cl) = f.truth_cluster {
                by_cluster.entry(cl).or_default().push(f);
            }
        }
        let clusters: Vec<&Vec<_>> = by_cluster.values().collect();
        // Rotate quickly through each cluster's members: plain LRU sees
        // few exact repeats, while prefetching benefits because the
        // *next* references are the semantic neighbours of the current
        // one.
        for burst in 0..120usize {
            let members = clusters[burst % clusters.len()];
            for k in 0..6.min(members.len()) {
                stream.push(members[(burst * 5 + k) % members.len()]);
            }
        }
        let run = |sys: &SmartStoreSystem, policy| {
            let mut c = SemanticCache::new(300, policy);
            for f in &stream {
                c.reference(sys, f.file_id, &f.attr_vector());
            }
            c.stats().hit_rate()
        };
        let plain = run(&sys, PrefetchPolicy::None);
        let smart = run(&sys, PrefetchPolicy::TopK { k: 6 });
        assert!(
            smart > plain,
            "semantic prefetch {smart:.3} must beat plain LRU {plain:.3}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        SemanticCache::new(0, PrefetchPolicy::None);
    }
}
