//! System-wide configuration with the paper's published defaults.

use smartstore_bloom::HashFamily;
use smartstore_rtree::RTreeConfig;
use smartstore_trace::AttributeKind;

/// All SmartStore tunables in one place.
#[derive(Clone, Debug)]
pub struct SmartStoreConfig {
    /// LSI rank `p` (singular values retained) for semantic projection.
    pub lsi_rank: usize,
    /// The grouping predicate: the attribute subset whose correlation
    /// drives file placement (Statement 1, §3.1.1: "find a subset of d
    /// attributes (1 ≤ d ≤ D), representing special interests, and use
    /// the correlation measured in this subset to partition similar file
    /// metadata"). The default uses all attributes — appropriate when
    /// behavioral attributes carry real correlation (as in the paper's
    /// traces, §1.1); narrow it to e.g. the paper's example predicate
    /// (size, creation time, modification time — §2.4) when some
    /// dimensions are known to be noise.
    pub grouping_dims: Vec<AttributeKind>,
    /// Admission threshold ε₁ for first-level grouping; per-level
    /// thresholds decay geometrically from it (deeper levels aggregate
    /// coarser groups, §3.1.1).
    pub admission_threshold: f64,
    /// Multiplicative decay of εᵢ per tree level.
    pub threshold_decay: f64,
    /// Fan-out bounds for the semantic R-tree (M and m of §4.1).
    pub rtree: RTreeConfig,
    /// Bloom filter bits per unit (paper: 1024, §5.1).
    pub bloom_bits: usize,
    /// Bloom hash count (paper: k = 7, §5.1).
    pub bloom_hashes: usize,
    /// Hash family deriving Bloom bit indexes. Defaults to the fast
    /// double-hashing family; set [`HashFamily::Md5`] to reproduce the
    /// paper's MD5 scheme (§5.1) bit for bit.
    pub bloom_family: HashFamily,
    /// Threshold for the automatic configuration: keep a subset R-tree
    /// when index-unit counts differ by more than this fraction
    /// (paper: 10%, §5.1).
    pub autoconfig_threshold: f64,
    /// Lazy-update threshold for off-line pre-processing: an index unit
    /// re-multicasts its replica after this fraction of its files
    /// changed (paper: 5%, §5.1).
    pub lazy_update_threshold: f64,
    /// File modification-to-version ratio (Fig. 14): 1 = comprehensive
    /// versioning (every change is a version); larger values aggregate
    /// more changes per version.
    pub version_ratio: u32,
    /// Durability tunables for the snapshot + WAL subsystem
    /// (`smartstore-persist`).
    pub persist: PersistConfig,
}

/// Tunables for the durable snapshot + write-ahead-log subsystem.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PersistConfig {
    /// `fsync` the WAL after this many appended frames (1 = sync every
    /// change, maximum durability; larger values batch syncs and trade
    /// the tail of the log for throughput).
    pub wal_sync_every: usize,
    /// Compact the WAL into a fresh snapshot once the log exceeds this
    /// many bytes.
    pub wal_compact_bytes: u64,
    /// Maximum differential-snapshot chain length: compaction appends
    /// cheap *delta* generations (re-encoding only the units dirtied
    /// since the previous generation) until the chain holds this many
    /// deltas, then pays for one full-image rewrite that resets the
    /// chain. `0` disables deltas entirely (every compaction rewrites
    /// the full image, the pre-differential behavior).
    pub max_delta_chain: usize,
}

impl Default for PersistConfig {
    fn default() -> Self {
        Self {
            // Group-commit batches of 64 changes amortize fsync latency
            // without letting a crash lose more than one batch.
            wal_sync_every: 64,
            // 16 MiB of log ≈ a few hundred thousand changes before the
            // cost of replay outweighs the cost of a snapshot rewrite.
            wal_compact_bytes: 16 * 1024 * 1024,
            // Eight deltas before a full rewrite: cold-start folds at
            // most eight extra files while compaction stays O(churn).
            max_delta_chain: 8,
        }
    }
}

impl Default for SmartStoreConfig {
    fn default() -> Self {
        Self {
            lsi_rank: 3,
            grouping_dims: AttributeKind::ALL.to_vec(),
            admission_threshold: 0.70,
            threshold_decay: 0.9,
            rtree: RTreeConfig {
                max_entries: 16,
                min_entries: 5,
            },
            bloom_bits: 1024,
            bloom_hashes: 7,
            bloom_family: HashFamily::default(),
            autoconfig_threshold: 0.10,
            lazy_update_threshold: 0.05,
            version_ratio: 16,
            persist: PersistConfig::default(),
        }
    }
}

impl SmartStoreConfig {
    /// Admission threshold for tree level `i` (1-based, level 1 groups
    /// storage units into first-level index units).
    pub fn threshold_for_level(&self, level: usize) -> f64 {
        assert!(level >= 1, "threshold_for_level: levels are 1-based");
        self.admission_threshold * self.threshold_decay.powi(level as i32 - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = SmartStoreConfig::default();
        assert_eq!(c.bloom_bits, 1024);
        assert_eq!(c.bloom_hashes, 7);
        // The geometry matches the paper; the hash family defaults to
        // the fast one (MD5 stays selectable for strict fidelity).
        assert_eq!(c.bloom_family, HashFamily::Fast);
        assert!((c.autoconfig_threshold - 0.10).abs() < 1e-12);
        assert!((c.lazy_update_threshold - 0.05).abs() < 1e-12);
    }

    #[test]
    fn thresholds_decay_with_level() {
        let c = SmartStoreConfig::default();
        assert!(c.threshold_for_level(1) > c.threshold_for_level(2));
        assert!(c.threshold_for_level(2) > c.threshold_for_level(5));
        assert!((c.threshold_for_level(1) - c.admission_threshold).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn level_zero_panics() {
        SmartStoreConfig::default().threshold_for_level(0);
    }
}
