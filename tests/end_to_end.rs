//! Cross-crate integration tests: trace generation → system build →
//! queries → baselines, exercised through the umbrella crate exactly as
//! a downstream user would.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_repro::bptree::Dbms;
use smartstore_repro::rtree::{bulk::str_bulk_load, RTreeConfig, Rect};
use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_repro::trace::query_gen::{recall, QueryGenConfig};
use smartstore_repro::trace::{
    QueryDistribution, QueryWorkload, TraceKind, WorkloadModel, ATTR_DIMS,
};

fn build_everything(
    kind: TraceKind,
    n_files: usize,
    n_units: usize,
    seed: u64,
) -> (
    smartstore_repro::trace::MetadataPopulation,
    SmartStoreSystem,
    Dbms,
    smartstore_repro::rtree::RTree<u64>,
) {
    let pop = WorkloadModel::new(kind).generate(n_files, seed);
    let sys = SmartStoreSystem::build(
        pop.files.clone(),
        n_units,
        SmartStoreConfig::default(),
        seed,
    );
    let mut db = Dbms::new(ATTR_DIMS, 16);
    for f in &pop.files {
        db.insert(f.file_id, &f.name, &f.attr_vector());
    }
    let items: Vec<(Rect, u64)> = pop
        .files
        .iter()
        .map(|f| (Rect::point(&f.attr_vector()), f.file_id))
        .collect();
    let rt = str_bulk_load(ATTR_DIMS, RTreeConfig::new(16, 6), items);
    (pop, sys, db, rt)
}

#[test]
fn three_engines_agree_on_range_answers() {
    let (pop, sys, db, rt) = build_everything(TraceKind::Msn, 2000, 20, 1);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 25,
            n_topk: 0,
            n_point: 0,
            seed: 2,
            ..Default::default()
        },
    );
    for q in &w.ranges {
        let mut smart = sys
            .query()
            .range(&q.lo, &q.hi, &QueryOptions::offline())
            .file_ids;
        let (mut dbms, _) = db.range_query(&q.lo, &q.hi);
        let query_rect = Rect::new(q.lo.clone(), q.hi.clone());
        let mut rtree: Vec<u64> = rt.range(&query_rect).into_iter().copied().collect();
        smart.sort_unstable();
        dbms.sort_unstable();
        rtree.sort_unstable();
        assert_eq!(smart, dbms, "SmartStore vs DBMS divergence");
        assert_eq!(dbms, rtree, "DBMS vs R-tree divergence");
        let mut ideal = q.ideal.clone();
        ideal.sort_unstable();
        assert_eq!(smart, ideal, "engines vs exhaustive ideal");
    }
}

#[test]
fn topk_engines_agree_with_exhaustive_search() {
    let (pop, sys, _db, rt) = build_everything(TraceKind::Eecs, 1500, 15, 3);
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 0,
            n_topk: 20,
            n_point: 0,
            k: 8,
            seed: 4,
            ..Default::default()
        },
    );
    for q in &w.topks {
        let smart = sys
            .query()
            .topk(&q.point, &QueryOptions::offline().with_k(q.k))
            .file_ids;
        assert!(
            recall(&q.ideal, &smart) > 0.99,
            "SmartStore top-k not exhaustive-exact"
        );
        let knn: Vec<u64> = rt.knn(&q.point, q.k).iter().map(|&(id, _)| *id).collect();
        assert!(
            recall(&q.ideal, &knn) > 0.99,
            "R-tree k-NN not exhaustive-exact"
        );
    }
}

#[test]
fn deterministic_build_across_runs() {
    let (_, sys_a, _, _) = build_everything(TraceKind::Hp, 1200, 12, 99);
    let (_, sys_b, _, _) = build_everything(TraceKind::Hp, 1200, 12, 99);
    let files_a: Vec<u64> = sys_a
        .units()
        .iter()
        .flat_map(|u| u.files().iter().map(|f| f.file_id))
        .collect();
    let files_b: Vec<u64> = sys_b
        .units()
        .iter()
        .flat_map(|u| u.files().iter().map(|f| f.file_id))
        .collect();
    assert_eq!(
        files_a, files_b,
        "placement must be deterministic under fixed seed"
    );
    assert_eq!(sys_a.stats().n_groups, sys_b.stats().n_groups);
}

#[test]
fn all_trace_kinds_build_and_answer() {
    for kind in TraceKind::ALL {
        let (pop, sys, _, _) = build_everything(kind, 800, 8, 5);
        sys.tree().check_invariants().unwrap();
        let f = &pop.files[17];
        let out = sys.query().point(&f.name);
        assert!(
            out.file_ids.contains(&f.file_id),
            "{}: fresh system must answer point queries",
            kind.name()
        );
    }
}

#[test]
fn scale_up_preserves_query_semantics() {
    use smartstore_repro::trace::scale_up;
    let pop = WorkloadModel::new(TraceKind::Msn).generate(400, 6);
    let scaled = scale_up(&pop, 4);
    assert_eq!(scaled.len(), 1600);
    let sys = SmartStoreSystem::build(scaled.files.clone(), 16, SmartStoreConfig::default(), 6);
    // Every sub-trace copy of one original file is found by name.
    let orig = &pop.files[42];
    for sub in 0..4 {
        let name = format!("st{sub:03}_{}", orig.name);
        let out = sys.query().point(&name);
        assert_eq!(out.file_ids.len(), 1, "copy {name} must resolve uniquely");
    }
}

#[test]
fn linalg_supports_the_full_pipeline() {
    // The SVD substrate digests a real attribute matrix end to end.
    use smartstore_repro::linalg::{jacobi_svd, Matrix};
    let pop = WorkloadModel::new(TraceKind::Msn).generate(300, 8);
    let mut m = Matrix::zeros(ATTR_DIMS, pop.files.len());
    for (j, f) in pop.files.iter().enumerate() {
        for (i, v) in f.attr_vector().into_iter().enumerate() {
            m[(i, j)] = v;
        }
    }
    let svd = jacobi_svd(&m);
    assert_eq!(svd.sigma.len(), ATTR_DIMS);
    let err = m.sub(&svd.reconstruct()).frobenius_norm() / m.frobenius_norm();
    assert!(
        err < 1e-9,
        "SVD must reconstruct the attribute matrix, err {err}"
    );
}

#[test]
fn bloom_point_queries_never_false_negative_on_fresh_system() {
    let (pop, sys, _, _) = build_everything(TraceKind::Msn, 1000, 10, 9);
    for f in pop.files.iter().step_by(13) {
        let out = sys.query().point(&f.name);
        assert!(
            out.file_ids.contains(&f.file_id),
            "fresh Bloom hierarchy cannot produce false negatives"
        );
    }
}

#[test]
fn workload_distributions_drive_different_query_mixes() {
    let pop = WorkloadModel::new(TraceKind::Msn).generate(2000, 10);
    let gen = |dist| {
        QueryWorkload::generate(
            &pop,
            &QueryGenConfig {
                n_range: 100,
                n_topk: 0,
                n_point: 0,
                distribution: dist,
                seed: 11,
                ..Default::default()
            },
        )
    };
    let zipf_pop: usize = gen(QueryDistribution::Zipf)
        .ranges
        .iter()
        .map(|q| q.ideal.len())
        .sum();
    let unif_pop: usize = gen(QueryDistribution::Uniform)
        .ranges
        .iter()
        .map(|q| q.ideal.len())
        .sum();
    assert!(
        zipf_pop > unif_pop,
        "Zipf-centred ranges must hit denser regions ({zipf_pop} vs {unif_pop})"
    );
}
