//! De-duplication candidate discovery (§1.2 of the paper):
//!
//! "SmartStore can help identify the duplicate copies that often exhibit
//! similar or approximate multi-dimensional attributes, such as file
//! size and created time … organizes them into the same or adjacent
//! groups where duplicate copies can be placed together with high
//! probability to narrow the search space."
//!
//! We plant duplicate copies of a set of master files (same size,
//! near-identical timestamps), then use top-k queries at each master to
//! shortlist candidates — touching a few semantic groups instead of
//! brute-forcing the whole system.
//!
//! ```sh
//! cargo run --release --example dedup_candidates
//! ```

use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_repro::trace::{TraceKind, WorkloadModel};

fn main() {
    let mut pop = WorkloadModel::new(TraceKind::Eecs).generate(5_000, 21);

    // Plant duplicates: 40 masters, 3 copies each, written moments after
    // the master with the same content (⇒ same size, similar I/O).
    let n = pop.files.len();
    let mut masters = Vec::new();
    let mut copies_of: Vec<(u64, Vec<u64>)> = Vec::new();
    for m in 0..40usize {
        let master = pop.files[m * 97 % n].clone();
        let mut copies = Vec::new();
        for c in 0..3u64 {
            let mut dup = master.clone();
            dup.file_id = 1_000_000 + (m as u64) * 10 + c;
            dup.name = format!("copy{c}_{}", master.name);
            dup.dir = format!("/backup{c}{}", master.dir);
            dup.ctime = (master.ctime + 1.0 + c as f64).min(pop.config.duration);
            dup.mtime = (master.mtime + 1.0 + c as f64).min(pop.config.duration);
            dup.atime = dup.atime.max(dup.mtime);
            copies.push(dup.file_id);
            pop.files.push(dup);
        }
        masters.push(master.file_id);
        copies_of.push((master.file_id, copies));
    }
    println!(
        "population: {} files incl. {} planted duplicates",
        pop.files.len(),
        40 * 3
    );

    let mut sys = SmartStoreSystem::build(pop.files.clone(), 50, SmartStoreConfig::default(), 21);

    // For each master, shortlist its k nearest files — duplicates have
    // near-identical attributes, so they should dominate the shortlist.
    let by_id: std::collections::HashMap<u64, _> =
        pop.files.iter().map(|f| (f.file_id, f)).collect();
    let mut recovered = 0usize;
    let mut total_units = 0usize;
    for (master, copies) in &copies_of {
        let point = by_id[master].attr_vector();
        let out = sys.query().topk(&point, &QueryOptions::offline().with_k(8));
        recovered += copies.iter().filter(|c| out.file_ids.contains(c)).count();
        total_units += out.cost.units_probed;
    }
    let total_copies = copies_of.iter().map(|(_, c)| c.len()).sum::<usize>();
    println!(
        "dedup shortlists recovered {recovered}/{total_copies} copies; \
         mean units probed per master: {:.1} of {}",
        total_units as f64 / copies_of.len() as f64,
        sys.stats().n_units,
    );
    assert!(
        recovered * 10 >= total_copies * 8,
        "at least 80% of planted duplicates should appear in top-8 shortlists"
    );
    println!(
        "brute force would compare each master against all {} files",
        pop.files.len()
    );

    // Purge every confirmed duplicate in one admin sweep: the bulk path
    // compacts each affected unit once and republishes fresh summaries,
    // instead of paying a per-file removal + recompute 120 times.
    let all_copies: Vec<u64> = copies_of.iter().flat_map(|(_, c)| c.clone()).collect();
    let purged = sys.remove_files_bulk(&all_copies);
    println!("purged {purged} duplicate copies in one bulk sweep");
    assert_eq!(purged, total_copies);
    for (_, copies) in &copies_of {
        for c in copies {
            let name = &by_id[c].name;
            assert!(
                sys.query().point(name).file_ids.is_empty(),
                "purged copy {name} must be gone"
            );
        }
    }
    for master in &masters {
        let name = &by_id[master].name;
        assert_eq!(
            sys.query().point(name).file_ids,
            vec![*master],
            "masters must survive the purge"
        );
    }
    println!("masters intact, copies gone — dedup sweep complete");
}
