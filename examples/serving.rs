//! Serving-layer walkthrough: a sharded metadata service with a wire
//! protocol, per-shard durability, and a cold restart.
//!
//! ```sh
//! cargo run --release --example serving
//! ```
//!
//! Flow: build a 4-shard [`MetadataServer`] over an MSN-model trace
//! (each shard = its own SmartStore system + snapshot + WAL directory),
//! serve a batched mix of point/range/top-k queries through a
//! [`Client`] (requests cross a simulated wire with CRC framing),
//! journal a few mutations, then drop the server and *cold-start* it
//! from the shard directories — answers must come back identical.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_repro::service::{Client, MetadataServer, Request, Response, ServerConfig};
use smartstore_repro::smartstore::versioning::Change;
use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::trace::query_gen::QueryGenConfig;
use smartstore_repro::trace::{QueryDistribution, QueryWorkload, TraceKind, WorkloadModel};

fn main() {
    let dir = std::env::temp_dir().join(format!("smartstore_serving_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Trace + sharded deployment: 4 simulated metadata servers, 15
    //    storage units each — the paper's 60-unit cluster, sharded.
    let pop = WorkloadModel::new(TraceKind::Msn).generate(6_000, 42);
    let mut srv = MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards: 4,
            units_per_shard: 15,
            seed: 42,
            store_dir: Some(dir.clone()),
            ..ServerConfig::default()
        },
    )
    .expect("server builds");
    println!("shard layout (each shard journals only its own groups):");
    for info in srv.layout() {
        println!(
            "  shard {}: {} units, {} files, {} semantic groups, store {}",
            info.id,
            info.n_units,
            info.n_files,
            info.n_groups,
            info.dir
                .as_ref()
                .map_or("-".into(), |d| d.display().to_string()),
        );
    }
    println!("group→server map entries: {}", srv.group_map().len());

    // 2. A batched query mix over one wire round trip.
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 3,
            n_topk: 3,
            n_point: 3,
            k: 8,
            distribution: QueryDistribution::Zipf,
            seed: 7,
            ..Default::default()
        },
    );
    let mut client = Client::new();
    for q in &w.points {
        client.enqueue(Request::Point {
            name: q.name.clone(),
        });
    }
    for q in &w.ranges {
        client.enqueue(Request::Range {
            lo: q.lo.clone(),
            hi: q.hi.clone(),
            opts: QueryOptions::offline(),
        });
    }
    for q in &w.topks {
        client.enqueue(Request::TopK {
            point: q.point.clone(),
            opts: QueryOptions::offline().with_k(q.k),
        });
    }
    let responses = client.flush(&mut srv).expect("wire ok");
    for (r, resp) in responses.iter().enumerate() {
        match resp {
            Response::Query(q) => println!(
                "  resp {r:2}: {:3} ids   latency {:7.2} ms  msgs {}",
                q.file_ids.len(),
                q.cost.latency_ns as f64 / 1e6,
                q.cost.messages
            ),
            Response::TopK(t) => println!(
                "  resp {r:2}: top-{}     latency {:7.2} ms  msgs {}",
                t.hits.len(),
                t.cost.latency_ns as f64 / 1e6,
                t.cost.messages
            ),
            other => println!("  resp {r:2}: {other:?}"),
        }
    }
    let cs = client.stats();
    println!(
        "client: {} requests in {} batch(es), {} B out / {} B in, simulated wire {:.2} ms",
        cs.requests,
        cs.batches,
        cs.bytes_sent,
        cs.bytes_received,
        cs.wire_ns as f64 / 1e6
    );

    // 3. Journal a few mutations (WAL-first on the owning shard).
    let mut fresh = pop.files[10].clone();
    fresh.file_id = 7_000_000;
    fresh.name = "serving_demo_file".into();
    client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Insert(fresh),
            },
        )
        .expect("wire ok");
    client
        .call(
            &mut srv,
            Request::ApplyChange {
                change: Change::Delete(pop.files[3].file_id),
            },
        )
        .expect("wire ok");
    srv.sync().expect("wal sync");

    // Remember a few answers, then crash/restart.
    let probe = Request::Point {
        name: "serving_demo_file".into(),
    };
    let before = srv.serve_read(&probe);
    drop(srv);

    // 4. Cold start from the shard directories: snapshot + WAL replay
    //    per shard.
    let mut reopened = MetadataServer::open(&dir).expect("cold start");
    let after = reopened.serve_read(&probe);
    assert_eq!(before, after, "cold restart must answer identically");
    println!(
        "cold restart: {} shards recovered, journaled insert found again → {:?}",
        reopened.n_shards(),
        after.file_ids().unwrap_or_default(),
    );

    // 5. Stats over the wire.
    match client.call(&mut reopened, Request::Stats).expect("wire ok") {
        Response::Stats(s) => println!(
            "stats: {} shards, {} units, {} semantic groups total",
            s.per_shard.len(),
            s.total_units(),
            s.total_groups()
        ),
        other => println!("stats: unexpected {other:?}"),
    }

    let _ = std::fs::remove_dir_all(&dir);
    println!("serving demo complete");
}
