//! Persistence walkthrough: build a system, snapshot it, journal live
//! churn through the write-ahead log — compacting *differentially*
//! (each generation re-encodes only the units the churn dirtied),
//! "crash" (drop everything), then reopen from disk and show the
//! recovered system folds base + deltas + WAL back to a state that
//! answers queries identically — without re-running the LSI grouping
//! pipeline.
//!
//! ```sh
//! cargo run --release --example persistence
//! ```

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_repro::smartstore::versioning::Change;
use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_repro::trace::query_gen::QueryGenConfig;
use smartstore_repro::trace::{
    MetadataPopulation, QueryDistribution, QueryWorkload, TraceKind, WorkloadModel,
};
use smartstore_repro::SystemPersist as _;
use std::time::Instant;

fn main() {
    let dir = std::env::temp_dir().join(format!("smartstore_example_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // 1. Build a system the expensive way: generate a trace and group it
    //    semantically with the full LSI pipeline.
    let pop = WorkloadModel::new(TraceKind::Msn).generate(8_000, 42);
    let t0 = Instant::now();
    let mut sys = SmartStoreSystem::build(pop.files.clone(), 40, SmartStoreConfig::default(), 42);
    let build_time = t0.elapsed();
    println!("built system from scratch in {build_time:?} (LSI grouping of 8k files)");
    // Compact aggressively so the walkthrough shows a differential
    // chain growing (production keeps the default 16 MiB threshold).
    sys.cfg.persist.wal_compact_bytes = 24 * 1024;

    // 2. Make it durable: snapshot + an empty write-ahead log.
    let (mut store, stats) = sys.save_snapshot(&dir).expect("snapshot");
    println!(
        "snapshot generation {}: {:.1} KiB ({} units, {} files, {} tree nodes)",
        store.generation(),
        stats.bytes as f64 / 1024.0,
        stats.n_units,
        stats.n_files,
        stats.n_nodes,
    );

    // 3. Live churn, journaled write-ahead: each change hits the WAL
    //    (group-tagged, checksummed) before the in-memory structures.
    //    Real change streams are skewed — a few hot semantic groups
    //    absorb most writes — so draw the churn from the files of a
    //    handful of units: per-unit dirty tracking then keeps each
    //    compaction *differential*, re-encoding only that footprint.
    let base: Vec<_> = sys.units()[..4]
        .iter()
        .flat_map(|u| u.files().iter().cloned())
        .collect();
    for i in 0..500u64 {
        let change = match i % 3 {
            0 => {
                let mut f = base[(i as usize * 17) % base.len()].clone();
                f.file_id = 1_000_000 + i;
                f.name = format!("fresh_{i}.dat");
                Change::Insert(f)
            }
            1 => Change::Delete(base[(i as usize * 29) % base.len()].file_id),
            _ => {
                let mut f = base[(i as usize * 41) % base.len()].clone();
                f.size *= 2;
                Change::Modify(f)
            }
        };
        sys.apply_journaled(&mut store, change).expect("journal");
    }
    store.sync().expect("sync");
    println!(
        "journaled 500 changes: WAL at {} frames / {} bytes (generation {})",
        store.wal_frames(),
        store.wal_bytes(),
        store.generation(),
    );
    println!(
        "differential chain: base generation {} + {} delta generation(s) {:?} — each delta \
         re-encoded only the units its churn window dirtied ({} currently dirty for the next one)",
        store.base_generation(),
        store.delta_chain().len(),
        store.delta_chain(),
        sys.dirty_count(),
    );

    // 4. "Crash": drop the live system and the store handle.
    let live = sys; // keep one copy only to verify equivalence below
    drop(store);

    // 5. Recover: snapshot + WAL replay, no regrouping.
    let t0 = Instant::now();
    let (reopened, _store, report) = SmartStoreSystem::open_from_dir(&dir).expect("recovery");
    let open_time = t0.elapsed();
    println!(
        "reopened from disk in {open_time:?} (base gen {} + {} folded delta(s) → gen {}, \
         {} WAL frames replayed, {} torn bytes dropped)",
        report.base_generation,
        report.deltas_folded,
        report.generation,
        report.replayed_frames,
        report.dropped_tail_bytes,
    );
    println!(
        "cold start vs rebuild: {:.1}× faster",
        build_time.as_secs_f64() / open_time.as_secs_f64().max(1e-9)
    );

    // 6. Prove equivalence: the recovered system answers exactly like
    //    the live one across all three query types.
    let current = MetadataPopulation {
        files: live.current_files(),
        config: pop.config.clone(),
    };
    let w = QueryWorkload::generate(
        &current,
        &QueryGenConfig {
            n_range: 30,
            n_topk: 30,
            n_point: 30,
            k: 8,
            distribution: QueryDistribution::Zipf,
            seed: 7,
            ..Default::default()
        },
    );
    let mut checked = 0;
    for q in &w.ranges {
        assert_eq!(
            live.query()
                .range(&q.lo, &q.hi, &QueryOptions::offline())
                .file_ids,
            reopened
                .query()
                .range(&q.lo, &q.hi, &QueryOptions::offline())
                .file_ids,
        );
        checked += 1;
    }
    for q in &w.topks {
        assert_eq!(
            live.query()
                .topk(&q.point, &QueryOptions::offline().with_k(q.k))
                .file_ids,
            reopened
                .query()
                .topk(&q.point, &QueryOptions::offline().with_k(q.k))
                .file_ids,
        );
        checked += 1;
    }
    for q in &w.points {
        assert_eq!(
            live.query().point(&q.name).file_ids,
            reopened.query().point(&q.name).file_ids,
        );
        checked += 1;
    }
    println!("{checked}/90 queries answered identically by the recovered system ✓");

    let _ = std::fs::remove_dir_all(&dir);
}
