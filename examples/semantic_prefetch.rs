//! Semantic-aware prefetching (§1.2):
//!
//! "when a file is visited, we can execute a top-k query to find its k
//! most correlated files to be prefetched … both top-k and range queries
//! can be completed within zero or a minimal number of hops since
//! correlated files are aggregated within the same or adjacent groups."
//!
//! We replay an access stream with strong semantic locality (campaign
//! files accessed together), drive a fixed-size metadata cache with
//! top-k prefetching, and compare its hit rate against plain LRU.
//!
//! ```sh
//! cargo run --release --example semantic_prefetch
//! ```

use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_repro::trace::{TraceKind, WorkloadModel};
use std::collections::{HashMap, VecDeque};

/// A fixed-capacity LRU set of file ids.
struct LruCache {
    cap: usize,
    queue: VecDeque<u64>,
    set: HashMap<u64, ()>,
}

impl LruCache {
    fn new(cap: usize) -> Self {
        Self {
            cap,
            queue: VecDeque::new(),
            set: HashMap::new(),
        }
    }

    fn contains(&self, id: u64) -> bool {
        self.set.contains_key(&id)
    }

    fn touch(&mut self, id: u64) {
        if let std::collections::hash_map::Entry::Vacant(e) = self.set.entry(id) {
            e.insert(());
        } else {
            if let Some(pos) = self.queue.iter().position(|&x| x == id) {
                self.queue.remove(pos);
            }
        }
        self.queue.push_back(id);
        while self.queue.len() > self.cap {
            if let Some(evicted) = self.queue.pop_front() {
                self.set.remove(&evicted);
            }
        }
    }
}

fn main() {
    let pop = WorkloadModel::new(TraceKind::Msn).generate(6_000, 33);
    let sys = SmartStoreSystem::build(pop.files.clone(), 60, SmartStoreConfig::default(), 33);

    // Access stream with semantic locality: walk a cluster's files in
    // bursts (a job reading its campaign's outputs), jumping clusters.
    let mut by_cluster: HashMap<u32, Vec<&_>> = HashMap::new();
    for f in &pop.files {
        if let Some(c) = f.truth_cluster {
            by_cluster.entry(c).or_default().push(f);
        }
    }
    let clusters: Vec<u32> = by_cluster.keys().copied().collect();
    let mut stream = Vec::new();
    let mut x = 12345usize;
    for burst in 0..300usize {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
        let c = clusters[(x >> 13) % clusters.len()];
        let members = &by_cluster[&c];
        for k in 0..8.min(members.len()) {
            stream.push(members[(burst + k) % members.len()].clone());
        }
    }
    println!(
        "access stream: {} references in {} bursts",
        stream.len(),
        300
    );

    const CACHE: usize = 400;
    // Plain LRU.
    let mut lru = LruCache::new(CACHE);
    let mut lru_hits = 0usize;
    for f in &stream {
        if lru.contains(f.file_id) {
            lru_hits += 1;
        }
        lru.touch(f.file_id);
    }

    // LRU + semantic prefetch: on every miss, fetch the file's top-8
    // most correlated files into the cache too.
    let mut pf = LruCache::new(CACHE);
    let mut pf_hits = 0usize;
    let mut prefetch_queries = 0usize;
    for f in &stream {
        if pf.contains(f.file_id) {
            pf_hits += 1;
            pf.touch(f.file_id);
        } else {
            pf.touch(f.file_id);
            let out = sys
                .query()
                .topk(&f.attr_vector(), &QueryOptions::offline().with_k(8));
            prefetch_queries += 1;
            for id in out.file_ids {
                pf.touch(id);
            }
        }
    }

    let lru_rate = lru_hits as f64 / stream.len() as f64;
    let pf_rate = pf_hits as f64 / stream.len() as f64;
    println!("plain LRU hit rate            : {:.1}%", lru_rate * 100.0);
    println!(
        "LRU + semantic prefetch (k=8) : {:.1}%  ({} prefetch queries)",
        pf_rate * 100.0,
        prefetch_queries
    );
    assert!(
        pf_rate > lru_rate,
        "semantic prefetching should beat plain LRU on a correlated stream"
    );
}
