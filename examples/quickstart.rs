//! Quickstart: build a SmartStore deployment over a synthetic trace and
//! run the three query types.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_repro::trace::query_gen::QueryGenConfig;
use smartstore_repro::trace::{QueryDistribution, QueryWorkload, TraceKind, WorkloadModel};

fn main() {
    // 1. A workload model stands in for a real file-system trace: here
    //    the MSN production-server model, 5 000 files.
    let pop = WorkloadModel::new(TraceKind::Msn).generate(5_000, 42);
    println!(
        "generated {} file-metadata records (MSN model)",
        pop.files.len()
    );

    // 2. Build the system: files are partitioned into 50 storage units
    //    by semantic correlation; the units aggregate into a semantic
    //    R-tree; index units are mapped onto storage units.
    let sys = SmartStoreSystem::build(pop.files.clone(), 50, SmartStoreConfig::default(), 42);
    let stats = sys.stats();
    println!(
        "built system: {} units in {} semantic groups, R-tree height {}, index {} KB",
        stats.n_units,
        stats.n_groups,
        stats.tree_height,
        stats.tree_index_bytes / 1024,
    );

    // 3. A filename point query (the classic FS lookup).
    let name = &pop.files[1234].name;
    let out = sys.query().point(name);
    println!(
        "point query  '{name}': found={:?}  latency={:.2} ms  messages={}",
        out.file_ids,
        out.cost.latency_ns as f64 / 1e6,
        out.cost.messages,
    );

    // 4. Complex queries. The paper's example: "Which experiments did I
    //    run yesterday that took less than 30 minutes and generated
    //    files larger than 2.6 GB?" — a multi-attribute range query.
    let w = QueryWorkload::generate(
        &pop,
        &QueryGenConfig {
            n_range: 1,
            n_topk: 1,
            n_point: 0,
            distribution: QueryDistribution::Zipf,
            seed: 7,
            ..Default::default()
        },
    );
    let rq = &w.ranges[0];
    let out = sys.query().range(&rq.lo, &rq.hi, &QueryOptions::offline());
    println!(
        "range query : {} results ({} ideal)  latency={:.2} ms  group hops={}",
        out.file_ids.len(),
        rq.ideal.len(),
        out.cost.latency_ns as f64 / 1e6,
        out.cost.group_hops,
    );

    // 5. A top-k query: "file size around X, last visited around T —
    //    show me the 8 closest files".
    let tq = &w.topks[0];
    let out = sys
        .query()
        .topk(&tq.point, &QueryOptions::offline().with_k(tq.k));
    let hits = tq
        .ideal
        .iter()
        .filter(|id| out.file_ids.contains(id))
        .count();
    println!(
        "top-{} query: recall {}/{}  latency={:.2} ms  units probed={}",
        tq.k,
        hits,
        tq.k,
        out.cost.latency_ns as f64 / 1e6,
        out.cost.units_probed,
    );
}
