//! Administrator audit — the paper's motivating scenario (§1):
//!
//! "after installing or updating software, a system administrator may
//! hope to track and find the changed files, which exist in both system
//! and user directories, to ward off malicious operations."
//!
//! A software update touches a batch of files scattered across the
//! *namespace* but correlated in *attribute space* (same modification
//! window, same process, similar write volumes). A directory walk would
//! have to scan everything; SmartStore answers it with one range query
//! over (mtime, write-volume) that lands on a couple of semantic groups.
//!
//! ```sh
//! cargo run --release --example admin_audit
//! ```

use smartstore_repro::smartstore::versioning::Change;
use smartstore_repro::smartstore::QueryOptions;
use smartstore_repro::smartstore::{SmartStoreConfig, SmartStoreSystem};
use smartstore_repro::trace::{TraceKind, WorkloadModel, ATTR_DIMS};

fn main() {
    let pop = WorkloadModel::new(TraceKind::Hp).generate(6_000, 7);
    let duration = pop.config.duration;
    let mut sys = SmartStoreSystem::build(pop.files.clone(), 60, SmartStoreConfig::default(), 7);
    println!(
        "system: {} units, {} groups over the HP workload model",
        sys.stats().n_units,
        sys.stats().n_groups
    );

    // --- The software update ---------------------------------------
    // An updater process rewrites 120 files spread over many owners and
    // directories during a 10-minute window near the end of the trace.
    let update_start = duration - 600.0;
    let updater_proc = 9999u32 % 128;
    let mut touched = Vec::new();
    for (i, f) in pop
        .files
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 50 == 3)
        .take(120)
    {
        let mut g = f.clone();
        g.mtime = update_start + (i % 600) as f64;
        g.atime = g.mtime;
        g.write_bytes += 4 << 20; // the update wrote ~4 MB into each
        g.proc_id = updater_proc;
        touched.push(g.file_id);
        sys.apply_change(Change::Modify(g));
    }
    println!(
        "software update rewrote {} files via proc {updater_proc}",
        touched.len()
    );

    // --- The audit query --------------------------------------------
    // "Everything modified in the update window with non-trivial write
    // volume" — a 2-constraint range query in the projected attribute
    // space; other dimensions unconstrained.
    let probe = sys.current_files();
    let (mut lo, mut hi) = ([f64::INFINITY; ATTR_DIMS], [f64::NEG_INFINITY; ATTR_DIMS]);
    for f in &probe {
        for (d, v) in f.attr_vector().into_iter().enumerate() {
            lo[d] = lo[d].min(v);
            hi[d] = hi[d].max(v);
        }
    }
    // Dim 2 = mtime (hours), dim 5 = ln(write_bytes).
    let mut qlo = lo.to_vec();
    let mut qhi = hi.to_vec();
    qlo[2] = update_start / 3600.0;
    qhi[2] = duration / 3600.0;
    qlo[5] = (4.0 * 1024.0 * 1024.0f64).ln(); // ≥ 4 MB written
    let out = sys.query().range(&qlo, &qhi, &QueryOptions::offline());

    let found = touched
        .iter()
        .filter(|id| out.file_ids.contains(id))
        .count();
    println!(
        "audit range query: {} results, {}/{} updated files found, \
         latency {:.2} ms, {} of {} units probed, {} group hops",
        out.file_ids.len(),
        found,
        touched.len(),
        out.cost.latency_ns as f64 / 1e6,
        out.cost.units_probed,
        sys.stats().n_units,
        out.cost.group_hops,
    );
    assert!(
        found * 10 >= touched.len() * 9,
        "the audit should recover at least 90% of the update set"
    );

    // Contrast: a namespace walk would visit every unit.
    println!(
        "a directory-tree walk would have scanned all {} units ({} files)",
        sys.stats().n_units,
        probe.len()
    );
}
