//! Network serving walkthrough: the metadata service behind a real
//! socket, with admission control and an open-loop load burst.
//!
//! ```sh
//! cargo run --release --example net_serving
//! ```
//!
//! Flow: spawn a [`NetServer`] (TCP on an ephemeral loopback port) over
//! a 2-shard [`MetadataServer`], verify the **parity gate** — response
//! bytes over the socket equal the in-process wire path — then issue
//! typed queries through a [`SocketTransport`] with retry, fire a short
//! open-loop load burst (fixed bursty arrival schedule, log-bucketed
//! latency histogram), and finish with a graceful shutdown that drains
//! in-flight requests and hands the server back.

#![allow(clippy::disallowed_methods)] // tests and examples may unwrap

use smartstore_repro::net::loadgen::{generate_requests, run_open_loop, LoadMixConfig};
use smartstore_repro::net::{NetAddr, NetServer, NetServerConfig, SocketTransport};
use smartstore_repro::service::codec::encode_request_batch;
use smartstore_repro::service::{
    Client, MetadataServer, Request, Response, RetryPolicy, ServerConfig, Transport,
};
use smartstore_repro::trace::{ArrivalConfig, ArrivalSchedule, TraceKind, WorkloadModel};

fn build_server(pop: &smartstore_repro::trace::MetadataPopulation) -> MetadataServer {
    MetadataServer::build(
        pop.files.clone(),
        &ServerConfig {
            n_shards: 2,
            units_per_shard: 10,
            seed: 42,
            store_dir: None,
            ..ServerConfig::default()
        },
    )
    .expect("server builds")
}

fn main() {
    // 1. A sharded metadata server behind a TCP accept loop. The
    //    admission budget bounds in-flight work; excess load is shed
    //    with a typed `Overloaded` instead of queueing unboundedly.
    let pop = WorkloadModel::new(TraceKind::Msn).generate(4_000, 42);
    let handle = NetServer::spawn(
        build_server(&pop),
        NetServerConfig {
            max_inflight: 64,
            max_inflight_per_conn: 16,
            ..NetServerConfig::default()
        },
    )
    .expect("net server spawns");
    let addr = NetAddr::Tcp(handle.tcp_addr().expect("tcp enabled"));
    println!("serving on {addr}");

    // 2. Parity gate: the same request bytes through the socket and
    //    through the in-process wire path must produce identical
    //    response bytes. Only after this gate do numbers mean anything.
    let stream = generate_requests(
        &pop,
        &LoadMixConfig {
            n_requests: 120,
            ..LoadMixConfig::default()
        },
    );
    let mut socket = SocketTransport::connect(addr.clone()).expect("connect");
    let mut reference = build_server(&pop);
    for batch in stream.chunks(16) {
        let wire = encode_request_batch(batch);
        let a = socket.exchange(&wire, batch.len()).expect("socket leg");
        let b = reference.exchange(&wire, batch.len()).expect("local leg");
        assert_eq!(a, b, "socket answers must be bit-identical");
    }
    println!(
        "parity gate: {} mixed requests, socket bytes == in-process bytes",
        stream.len()
    );

    // 3. Typed queries over the socket, with the client's retry loop
    //    (reconnect + backoff on transport errors, jitter on sheds).
    let mut client = Client::new();
    let hot = pop.files[0].name.clone();
    match client
        .call_with_retry(
            &mut socket,
            Request::Point { name: hot.clone() },
            RetryPolicy::default(),
        )
        .expect("point over tcp")
    {
        Response::Query(q) => println!("point '{hot}' → {} id(s)", q.file_ids.len()),
        other => println!("point '{hot}' → {other:?}"),
    }

    // 4. An open-loop burst: arrivals fixed in advance (bursty),
    //    latency measured from the *scheduled* arrival so queueing
    //    delay is charged to the server.
    let reqs = generate_requests(
        &pop,
        &LoadMixConfig {
            n_requests: 1_500,
            seed: 7,
            ..LoadMixConfig::default()
        },
    );
    let schedule = ArrivalSchedule::generate(&ArrivalConfig {
        rate_rps: 3_000.0,
        n_arrivals: reqs.len(),
        burstiness: 2.0,
        seed: 7,
        ..ArrivalConfig::default()
    });
    let report = run_open_loop(&addr, &reqs, &schedule, 3).expect("load burst");
    println!(
        "open-loop burst: {} sent, {} answered, {} shed ({:.1}%), {:.0} req/s",
        report.sent,
        report.answered,
        report.shed,
        report.shed_rate() * 100.0,
        report.achieved_rps()
    );
    println!(
        "latency: p50 {:.2} ms, p99 {:.2} ms, p999 {:.2} ms",
        report.latency_ms(0.50),
        report.latency_ms(0.99),
        report.latency_ms(0.999)
    );

    // 5. Graceful shutdown: drain in-flight requests, flush per-shard
    //    WALs, hand the server back for in-process use.
    drop(socket);
    let (server, stats) = handle.shutdown().expect("graceful shutdown");
    println!(
        "shutdown: {} conns accepted, {} requests admitted, {} shed, {} mutations applied",
        stats.connections_accepted,
        stats.requests_admitted,
        stats.requests_shed,
        stats.mutations_applied
    );
    let resp = server.serve_read(&Request::Point { name: hot.clone() });
    assert!(matches!(resp, Response::Query(_)));
    println!("drained server still answers '{hot}' in-process — net serving demo complete");
}
